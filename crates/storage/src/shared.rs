//! The shared, epoch-versioned store backing multi-view maintenance.
//!
//! `dcq-incremental`'s first iteration gave every maintained view a private
//! snapshot of the relations it referenced: `N` views over the same database held
//! `N` copies, and every view re-normalized every batch against its own membership
//! sets.  [`SharedDatabase`] is the replacement: **one** [`Database`] of record,
//! owned by an engine, with
//!
//! * a monotonically increasing **epoch** — every applied batch (or explicit
//!   [`SharedDatabase::tick`]) advances it, so consumers can record exactly which
//!   prefix of the update stream they reflect;
//! * **set-semantics invariants** enforced at the boundary — relations are
//!   deduplicated on ingest and every update goes through normalization, so reads
//!   never observe duplicates;
//! * **`O(|Δ|)` updates** — each relation's membership cache
//!   ([`Relation::cached_row_set`]) is warmed on first touch and maintained
//!   incrementally afterwards;
//! * an [`AppliedBatch`] summary per update carrying the **normalized per-relation
//!   deltas** in both row space and dictionary-id space, computed once and fanned
//!   out to every registered view instead of being recomputed per view.
//!
//! ## Flat interned execution storage
//!
//! The store keeps two coordinated representations of every relation:
//!
//! * the canonical row-space [`Relation`] (boxed [`Row`]s) — the public API,
//!   rerun evaluation, and serialization boundary;
//! * a flat id-space mirror — a per-store [`ValueDict`] interning every
//!   [`Value`](crate::Value) to a dense `u32`, and one [`RelationStore`] of
//!   `arity × len` `u32` columns per relation.
//!
//! Everything on the maintenance hot path (index buckets, delta-join probes,
//! support counts) runs in id space: [`SharedDatabase::apply_batch`] interns each
//! normalized delta **once** and fans the resulting [`IdDelta`]s out, so no
//! consumer hashes or clones a `Value` per probe.  The dictionary is append-only
//! — an id never changes meaning — which is what makes id-space snapshots
//! trivially consistent: any dictionary state at or after an epoch resolves every
//! id that existed at that epoch.
//!
//! Reads go through [`RelationRef`], a lightweight handle pairing the relation with
//! the epoch it was observed at; delta-join consumers additionally probe the
//! store's **index registry** ([`IndexRegistry`]) — refcounted hash indexes in
//! stored-column id coordinates, acquired per query plan and maintained exactly
//! once per applied batch no matter how many views share them.

use crate::database::Database;
use crate::delta::{normalize_delta, DeltaBatch, DeltaEffect};
use crate::dict::{DictSnapshot, DictStats, ValueDict};
use crate::fanout::WorkerPool;
use crate::flat::{IdDelta, RelationStore, ShardedRelationStore, STORE_SHARDS};
use crate::hash::{shard_of_ids, FastHashMap};
use crate::registry::{IndexId, IndexKey, IndexRegistry, IndexRegistryStats, IndexSnapshot};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::Schema;
use crate::{Result, StorageError};
use std::fmt;

/// A monotonically increasing version number of a [`SharedDatabase`].
///
/// Epoch `0` is the registration state; every applied batch (and every explicit
/// [`SharedDatabase::tick`]) advances it by one.
pub type Epoch = u64;

/// A single database of record shared by many maintained views.
///
/// The store deliberately exposes **no** direct mutable access to its relations:
/// every change goes through [`SharedDatabase::apply_batch`], which normalizes,
/// interns, applies, and versions the update in one pass.  That is what lets an
/// engine hand the resulting [`AppliedBatch`] to every registered view without
/// each view re-deriving the net effect.
#[derive(Clone, Default)]
pub struct SharedDatabase {
    db: Database,
    epoch: Epoch,
    indexes: IndexRegistry,
    /// Store-wide value dictionary: every value of every relation interned.
    dict: ValueDict,
    /// Flat id-space mirror of every relation — [`STORE_SHARDS`] hash-disjoint
    /// sub-stores each — maintained in lock-step with `db` by `apply_batch` /
    /// `add_relation` / `remove_relation`.
    flat: FastHashMap<String, ShardedRelationStore>,
    /// Workers the commit path ([`SharedDatabase::apply_batch`]) spreads its
    /// per-shard mirror and index maintenance over.  Pure scheduling: shard
    /// membership is fixed by [`STORE_SHARDS`], so contents are bit-identical
    /// at any width.  `0`/unset behaves as `1` (inline).
    commit_workers: usize,
    /// Cumulative interned delta rows routed to each shard — the skew gauges'
    /// backing counts.  Content-deterministic (row hashes, not scheduling).
    commit_shard_rows: Vec<u64>,
}

fn intern_relation(dict: &mut ValueDict, rel: &Relation) -> ShardedRelationStore {
    let mut store = ShardedRelationStore::new(rel.schema().arity());
    let mut ids: Vec<u32> = Vec::with_capacity(rel.schema().arity());
    for row in rel.iter() {
        ids.clear();
        ids.extend(row.iter().map(|v| dict.intern(v)));
        store.insert_ids(&ids);
    }
    store
}

impl SharedDatabase {
    /// Create an empty store at epoch `0`.
    pub fn empty() -> Self {
        SharedDatabase::default()
    }

    /// Take ownership of a database, deduplicating every relation (the store
    /// maintains set semantics as an invariant), interning its contents into the
    /// flat id-space mirror, and starting at epoch `0`.
    pub fn new(mut db: Database) -> Self {
        for name in db.relation_names() {
            db.get_mut(&name)
                .expect("name comes from the database")
                .dedup();
        }
        let mut dict = ValueDict::new();
        let mut flat = FastHashMap::default();
        for (name, rel) in db.iter() {
            flat.insert(name.clone(), intern_relation(&mut dict, rel));
        }
        SharedDatabase {
            db,
            epoch: 0,
            indexes: IndexRegistry::new(),
            dict,
            flat,
            commit_workers: 1,
            commit_shard_rows: vec![0; STORE_SHARDS],
        }
    }

    /// Take ownership of a database like [`SharedDatabase::new`], but start
    /// the epoch counter at `epoch` instead of `0`.
    ///
    /// This is the recovery constructor: a store rebuilt from a checkpoint
    /// taken at epoch `e` must keep numbering where the pre-crash store left
    /// off, or replayed batches and previously acknowledged epochs would no
    /// longer line up.
    pub fn new_at(db: Database, epoch: Epoch) -> Self {
        let mut store = SharedDatabase::new(db);
        store.epoch = epoch;
        store
    }

    /// The current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Advance the epoch without touching any relation.
    ///
    /// Used when a consumer wants the version counter to cover updates that were
    /// inspected but contained nothing for this store (e.g. a maintained view fed a
    /// batch that only touches unreferenced relations).
    pub fn tick(&mut self) -> Epoch {
        self.epoch += 1;
        self.epoch
    }

    /// Read-only access to the underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Consume the store, returning the underlying database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// The store-wide value dictionary.
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// A cheap immutable snapshot of the dictionary (resolves every id assigned
    /// so far; see [`DictSnapshot`]).
    pub fn dict_snapshot(&self) -> DictSnapshot {
        self.dict.snapshot()
    }

    /// Point-in-time dictionary counters (entries, bytes, intern hit/miss).
    pub fn dict_stats(&self) -> DictStats {
        self.dict.stats()
    }

    /// The flat id-space mirror of one relation, if registered.
    pub fn flat(&self, name: &str) -> Option<&ShardedRelationStore> {
        self.flat.get(name)
    }

    /// Estimated **allocated** heap footprint of all flat relation buffers, in
    /// bytes (live cells plus free-listed holes and spare capacity).
    pub fn flat_bytes(&self) -> usize {
        self.flat
            .values()
            .map(ShardedRelationStore::approx_bytes)
            .sum()
    }

    /// Estimated heap bytes attributable to **live** flat rows only.  The gap
    /// to [`SharedDatabase::flat_bytes`] is reclaimable slack, bounded by the
    /// stores' compact-at-half-holes policy.
    pub fn flat_live_bytes(&self) -> usize {
        self.flat
            .values()
            .map(ShardedRelationStore::live_bytes)
            .sum()
    }

    /// Per-relation flat-buffer footprints `(name, live bytes, allocated
    /// bytes)`, in name order.
    pub fn flat_relation_bytes(&self) -> Vec<(String, usize, usize)> {
        let mut out: Vec<(String, usize, usize)> = self
            .flat
            .iter()
            .map(|(name, store)| (name.clone(), store.live_bytes(), store.approx_bytes()))
            .collect();
        out.sort();
        out
    }

    /// The commit width [`SharedDatabase::apply_batch`] spreads per-shard
    /// maintenance over.
    pub fn commit_workers(&self) -> usize {
        self.commit_workers.max(1)
    }

    /// Set the commit width (clamped to at least 1).  Scheduling only — store
    /// contents, epochs and telemetry counters are bit-identical at any width,
    /// because shard membership is fixed by [`STORE_SHARDS`].
    pub fn set_commit_workers(&mut self, workers: usize) {
        self.commit_workers = workers.max(1);
    }

    /// Cumulative interned delta rows routed to each of the [`STORE_SHARDS`]
    /// store shards — the basis of the shard-skew gauges.  Deterministic in
    /// the update stream's contents; independent of commit width.
    pub fn commit_shard_rows(&self) -> Vec<u64> {
        let mut rows = self.commit_shard_rows.clone();
        rows.resize(STORE_SHARDS, 0);
        rows
    }

    /// Resolve an id block back to a row through the dictionary.
    ///
    /// # Panics
    /// Panics if any id was never assigned.
    pub fn resolve_row(&self, ids: &[u32]) -> Row {
        Row::new(
            ids.iter()
                .map(|&id| self.dict.resolve(id).clone())
                .collect(),
        )
    }

    /// Translate a row of values to dictionary ids into `out` (cleared first).
    ///
    /// Returns `false` — with `out` left in an unspecified state — if any value
    /// was never interned, in which case the row cannot match anything stored.
    pub fn lookup_ids(&self, row: &Row, out: &mut Vec<u32>) -> bool {
        out.clear();
        for value in row.iter() {
            match self.dict.lookup(value) {
                Some(id) => out.push(id),
                None => return false,
            }
        }
        true
    }

    /// Register a new relation (deduplicated on ingest, interned into the flat
    /// mirror).
    ///
    /// Fails if a relation with the same name already exists, like
    /// [`Database::add`].
    pub fn add_relation(&mut self, mut relation: Relation) -> Result<()> {
        relation.dedup();
        let store = intern_relation(&mut self.dict, &relation);
        let name = relation.name().to_string();
        self.db.add(relation)?;
        self.flat.insert(name, store);
        Ok(())
    }

    /// Remove a relation, returning it if present.  Registry indexes over it are
    /// dropped (outstanding [`IndexId`]s over it become dead and probe empty),
    /// and the flat mirror is discarded.  Dictionary ids are never reclaimed —
    /// the id space is append-only by design.
    pub fn remove_relation(&mut self, name: &str) -> Option<Relation> {
        self.indexes.drop_relation(name);
        self.flat.remove(name);
        self.db.remove(name)
    }

    /// A versioned read handle on one relation.
    pub fn relation(&self, name: &str) -> Result<RelationRef<'_>> {
        Ok(RelationRef {
            store: self,
            relation: self.db.get(name)?,
            epoch: self.epoch,
        })
    }

    /// Find-or-build the shared index identified by `key`, bumping its refcount.
    ///
    /// Validates the key against the relation's schema (every referenced position
    /// must exist).  A fresh index costs one `O(N)` build over the current flat
    /// contents; a live one is reused as-is — it has been maintained under every
    /// batch since it was built.  Pair every acquisition with a
    /// [`SharedDatabase::release_index`].
    pub fn acquire_index(&mut self, key: IndexKey) -> Result<IndexId> {
        let relation = self.db.get(&key.relation)?;
        let arity = relation.schema().arity();
        let out_of_range = key
            .key_positions
            .iter()
            .chain(key.equalities.iter().flat_map(|(a, b)| [a, b]))
            .any(|&p| p >= arity);
        if out_of_range {
            return Err(StorageError::ArityMismatch {
                relation: key.relation.clone(),
                expected: arity,
                actual: key
                    .key_positions
                    .iter()
                    .chain(key.equalities.iter().flat_map(|(a, b)| [a, b]))
                    .max()
                    .copied()
                    .unwrap_or(0)
                    + 1,
            });
        }
        let flat = self
            .flat
            .get(&key.relation)
            .expect("every registered relation has a flat mirror");
        Ok(self.indexes.acquire(key, flat, self.epoch))
    }

    /// Drop one reference on a shared index; the structure is freed when the last
    /// holder releases.
    pub fn release_index(&mut self, id: IndexId) {
        self.indexes.release(id);
    }

    /// Contiguous row blocks of the index `id` matching the key ids, or an empty
    /// slice — the zero-allocation probe the delta-join hot path runs on.
    ///
    /// Blocks are at the index's [`stride`](crate::registry::SharedIndex::stride)
    /// in stored-column coordinates; consumers project with their plan's
    /// positions and resolve ids only at result boundaries.
    pub fn probe_index_ids(&self, id: IndexId, key: &[u32]) -> &[u32] {
        self.indexes.probe_ids(id, key)
    }

    /// Stored rows of the index `id` matching `key`, resolved back to row space.
    ///
    /// Convenience/compatibility wrapper over [`SharedDatabase::probe_index_ids`]:
    /// translates the probe key through the dictionary (a never-interned value
    /// matches nothing) and materializes the matching blocks as [`Row`]s.  Hot
    /// paths should probe in id space instead.
    pub fn probe_index(&self, id: IndexId, key: &Row) -> Vec<Row> {
        let mut key_ids = Vec::with_capacity(key.arity());
        if !self.lookup_ids(key, &mut key_ids) {
            return Vec::new();
        }
        let Some(entry) = self.indexes.get(id) else {
            return Vec::new();
        };
        let (arity, stride) = (entry.arity(), entry.stride());
        entry
            .probe_ids(&key_ids)
            .chunks_exact(stride)
            .map(|block| self.resolve_row(&block[..arity]))
            .collect()
    }

    /// The registry entry behind `id`, if it is live.
    pub fn index(&self, id: IndexId) -> Option<&crate::registry::SharedIndex> {
        self.indexes.get(id)
    }

    /// Number of live shared indexes.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Estimated heap footprint of all live shared indexes in bytes.
    pub fn index_bytes(&self) -> usize {
        self.indexes.approx_bytes()
    }

    /// Point-in-time registry counters.
    pub fn index_stats(&self) -> IndexRegistryStats {
        self.indexes.stats()
    }

    /// Cumulative index-maintenance telemetry (COW clones vs. in-place writes,
    /// snapshot pins); all zero without the `telemetry` feature.
    pub fn index_telemetry(&self) -> crate::registry::IndexTelemetry {
        self.indexes.telemetry()
    }

    /// An epoch-stamped, immutable snapshot of every live shared index.
    ///
    /// Snapshots are cheap (one `Arc` clone per live index), `Send + Sync`, and
    /// probe **lock-free** through the same [`IndexId`]s the store hands out —
    /// and they stay pinned at this epoch: later [`SharedDatabase::apply_batch`]
    /// calls maintain the live registry copy-on-write, never the snapshotted
    /// entries.  This is how a long-running front-end overlaps reads with the
    /// update stream: queries probe their snapshot without blocking (or being
    /// torn by) writers, while the steady state without outstanding snapshots
    /// pays zero copies.  Pair with [`SharedDatabase::dict_snapshot`] to resolve
    /// ids — the dictionary is append-only, so the pairing can never dangle.
    pub fn index_snapshot(&self) -> IndexSnapshot {
        self.indexes.snapshot(self.epoch)
    }

    /// `true` iff a relation with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.db.contains(name)
    }

    /// Names of all registered relations, in sorted order.
    pub fn relation_names(&self) -> Vec<String> {
        self.db.relation_names()
    }

    /// Total number of tuples across all relations.
    pub fn input_size(&self) -> usize {
        self.db.input_size()
    }

    /// Estimated heap footprint in bytes (row-space representation; see
    /// [`SharedDatabase::flat_bytes`] for the id-space mirror).
    pub fn approx_bytes(&self) -> usize {
        self.db.approx_bytes()
    }

    /// Apply one delta batch: validate, normalize each relation's operations
    /// against its (cached) membership, intern the net delta to id space, apply
    /// both representations in place, and advance the epoch.
    ///
    /// The whole batch is validated before anything mutates — unknown relations or
    /// arity mismatches leave the store (and its epoch) untouched.  The returned
    /// [`AppliedBatch`] carries the normalized per-relation deltas in both row
    /// and id space, so that `N` consumers can share one normalization and one
    /// interning pass.
    ///
    /// ## Sharded commit
    ///
    /// The commit runs in two phases behind the single epoch advance:
    ///
    /// 1. **Sequential** — row-space normalization and application, and
    ///    dictionary interning (id assignment must stay ordered to keep the
    ///    id space deterministic).
    /// 2. **Parallel** — every relation mirror and every touched shared index
    ///    is split into its [`STORE_SHARDS`] hash-disjoint shards, and the
    ///    per-shard sub-deltas run one task per `(structure, shard)` on the
    ///    [commit worker pool](SharedDatabase::set_commit_workers).  Shard
    ///    membership is a pure row-hash function, so the result is
    ///    bit-identical to a sequential commit at any width.
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<AppliedBatch> {
        for (name, raw) in batch.iter() {
            let rel = self.db.get(name)?;
            for (row, _) in raw {
                if row.arity() != rel.schema().arity() {
                    return Err(StorageError::ArityMismatch {
                        relation: name.to_string(),
                        expected: rel.schema().arity(),
                        actual: row.arity(),
                    });
                }
            }
        }
        let mut effect = DeltaEffect::default();
        let mut normalized = Vec::with_capacity(batch.relations().count());
        let mut interned: Vec<(String, IdDelta)> = Vec::with_capacity(batch.relations().count());
        let next_epoch = self.epoch + 1;
        let mut ids: Vec<u32> = Vec::new();
        // Phase 1 (sequential): normalize and apply row space, intern the
        // normalized delta once; every index and every counting side
        // downstream consumes these ids instead of hashing values.
        for (name, raw) in batch.iter() {
            let rel = self.db.get_mut(name).expect("validated above");
            let arity = rel.schema().arity();
            let delta = normalize_delta(rel.cached_row_set(), raw);
            effect.absorb(rel.apply_normalized_delta(&delta));
            let mut id_delta = IdDelta::new(arity);
            for (row, sign) in &delta {
                ids.clear();
                ids.extend(row.iter().map(|v| self.dict.intern(v)));
                id_delta.push(&ids, *sign);
            }
            self.commit_shard_rows.resize(STORE_SHARDS, 0);
            for (row, _) in id_delta.iter() {
                self.commit_shard_rows[shard_of_ids(row, STORE_SHARDS)] += 1;
            }
            normalized.push((name.to_string(), delta));
            interned.push((name.to_string(), id_delta));
        }
        // Phase 2 (parallel): per-shard mirror maintenance, one task per
        // (relation, shard); rows of different shards never touch the same
        // sub-store, so the tasks borrow disjoint `&mut` state.
        let pool = WorkerPool::new(self.commit_workers());
        struct MirrorTask<'a> {
            shard: &'a mut RelationStore,
            shard_idx: usize,
            delta: &'a IdDelta,
        }
        let mut mirror_tasks: Vec<MirrorTask<'_>> = Vec::new();
        for (name, sharded) in self.flat.iter_mut() {
            let touching = interned
                .iter()
                .find(|(touched, delta)| touched == name && !delta.is_empty());
            let Some((_, delta)) = touching else {
                continue;
            };
            for (shard_idx, shard) in sharded.shards_mut().iter_mut().enumerate() {
                mirror_tasks.push(MirrorTask {
                    shard,
                    shard_idx,
                    delta,
                });
            }
        }
        pool.run(mirror_tasks, |_, t| {
            t.shard
                .apply_delta_routed(t.delta, t.shard_idx, STORE_SHARDS)
        });
        // Maintain every registered index over the touched relations exactly
        // once — this is the pass N sharing views used to pay N times — one
        // task per (index, shard).  Touched entries are stamped with the epoch
        // this batch advances to; an outstanding snapshot forces a
        // copy-on-write, so its readers keep their epoch while the live
        // registry moves on.
        self.indexes
            .apply_batch_deltas(&interned, next_epoch, &pool);
        self.epoch = next_epoch;
        Ok(AppliedBatch {
            epoch: self.epoch,
            effect,
            normalized,
            interned,
        })
    }
}

impl fmt::Debug for SharedDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SharedDatabase[epoch {}, {} relations, {} tuples, {} indexes, {} dict entries]",
            self.epoch,
            self.db.relation_count(),
            self.db.input_size(),
            self.indexes.len(),
            self.dict.len()
        )
    }
}

/// A lightweight, versioned read handle on one relation of a [`SharedDatabase`].
///
/// The handle records the store epoch it was taken at, so a consumer holding
/// results derived through it can tell exactly which update-stream prefix they
/// reflect.
#[derive(Clone, Copy)]
pub struct RelationRef<'a> {
    store: &'a SharedDatabase,
    relation: &'a Relation,
    epoch: Epoch,
}

impl<'a> RelationRef<'a> {
    /// The underlying relation.
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// The relation's flat id-space mirror.
    pub fn flat(&self) -> &'a ShardedRelationStore {
        self.store
            .flat(self.relation.name())
            .expect("every registered relation has a flat mirror")
    }

    /// Probe a shared index of the owning store through this handle, resolving
    /// matches back to row space.
    ///
    /// The index must be over **this** relation (checked in debug builds); rows
    /// come back as full stored rows, equality-filtered at maintenance time.
    /// Hot paths should use [`SharedDatabase::probe_index_ids`] instead.
    pub fn probe(&self, id: IndexId, key: &Row) -> Vec<Row> {
        debug_assert!(
            self.store
                .index(id)
                .is_none_or(|e| e.key().relation == self.relation.name()),
            "probe of an index over a different relation"
        );
        self.store.probe_index(id, key)
    }

    /// The store epoch this handle was taken at.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The relation's name.
    pub fn name(&self) -> &'a str {
        self.relation.name()
    }

    /// The relation's schema.
    pub fn schema(&self) -> &'a Schema {
        self.relation.schema()
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.relation.len()
    }

    /// `true` iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// The stored rows (distinct — the store maintains set semantics).
    pub fn rows(&self) -> &'a [Row] {
        self.relation.rows()
    }
}

impl fmt::Debug for RelationRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RelationRef[{} @ epoch {}, {} rows]",
            self.relation.name(),
            self.epoch,
            self.relation.len()
        )
    }
}

/// The record of one batch applied to a [`SharedDatabase`]: the epoch it advanced
/// the store to, the net effect, and the **normalized** per-relation deltas in
/// both row space and dictionary-id space.
///
/// Normalization and interning happen once here; every registered view then
/// consumes the same net deltas instead of re-deriving them against private
/// membership sets.
#[derive(Clone, Debug, Default)]
pub struct AppliedBatch {
    /// The epoch the store advanced to by applying this batch.
    pub epoch: Epoch,
    /// Net tuples inserted / deleted across all touched relations.
    pub effect: DeltaEffect,
    /// Per touched relation (in batch order): the net set-semantics delta.  A
    /// relation whose operations all normalized away is present with an empty
    /// delta — consumers can distinguish "touched but redundant" from "untouched".
    pub normalized: Vec<(String, Vec<(Row, i64)>)>,
    /// The same deltas in dictionary-id space (same relation order, same row
    /// order) — what the maintenance hot path consumes.
    pub interned: Vec<(String, IdDelta)>,
}

impl AppliedBatch {
    /// An applied batch that touched nothing (an epoch tick).
    pub fn noop(epoch: Epoch) -> Self {
        AppliedBatch {
            epoch,
            ..AppliedBatch::default()
        }
    }

    /// `true` iff the batch touched `relation` (even if its operations all
    /// normalized away).
    pub fn touches(&self, relation: &str) -> bool {
        self.normalized.iter().any(|(name, _)| name == relation)
    }

    /// The normalized delta against `relation`, if the batch touched it.
    pub fn normalized_ops(&self, relation: &str) -> Option<&[(Row, i64)]> {
        self.normalized
            .iter()
            .find(|(name, _)| name == relation)
            .map(|(_, ops)| ops.as_slice())
    }

    /// The interned delta against `relation`, if the batch touched it.
    pub fn interned_ops(&self, relation: &str) -> Option<&IdDelta> {
        self.interned
            .iter()
            .find(|(name, _)| name == relation)
            .map(|(_, delta)| delta)
    }

    /// `true` iff no tuple actually changed.
    pub fn is_noop(&self) -> bool {
        self.effect.total() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    fn store() -> SharedDatabase {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![1, 2]], // duplicate on purpose
        ))
        .unwrap();
        db.add(Relation::from_int_rows("Node", &["id"], vec![vec![1]]))
            .unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn ingest_dedups_and_starts_at_epoch_zero() {
        let store = store();
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.relation("Graph").unwrap().len(), 2);
        assert!(store.contains("Node"));
        assert_eq!(store.relation_names(), vec!["Graph", "Node"]);
    }

    #[test]
    fn flat_mirror_tracks_the_row_space() {
        let mut store = store();
        // Ingest interned every distinct value: 1, 2, 3.
        assert_eq!(store.dict().len(), 3);
        let graph = store.flat("Graph").unwrap();
        assert_eq!((graph.arity(), graph.len()), (2, 2));
        assert_eq!(store.flat("Node").unwrap().len(), 1);
        assert!(store.flat("Missing").is_none());
        assert!(store.flat_bytes() > 0);
        let per_rel = store.flat_relation_bytes();
        assert_eq!(per_rel.len(), 2);
        assert_eq!(per_rel[0].0, "Graph");

        // Applying a batch keeps the mirror in lock-step and extends the dict.
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([9, 1]));
        batch.delete("Graph", int_row([2, 3]));
        let applied = store.apply_batch(&batch).unwrap();
        assert_eq!(store.flat("Graph").unwrap().len(), 2);
        assert_eq!(store.dict().len(), 4, "only 9 is new");
        let id_delta = applied.interned_ops("Graph").unwrap();
        assert_eq!(id_delta.len(), 2);
        // Interned rows resolve back to the row-space delta, in order.
        let rows: Vec<(Row, i64)> = id_delta
            .iter()
            .map(|(ids, sign)| (store.resolve_row(ids), sign))
            .collect();
        let mut expect = applied.normalized_ops("Graph").unwrap().to_vec();
        expect.sort();
        let mut rows_sorted = rows.clone();
        rows_sorted.sort();
        assert_eq!(rows_sorted, expect);
        assert!(applied.interned_ops("Missing").is_none());

        // lookup_ids round-trips stored rows and rejects unseen values.
        let mut ids = Vec::new();
        assert!(store.lookup_ids(&int_row([9, 1]), &mut ids));
        assert!(store.flat("Graph").unwrap().contains_ids(&ids));
        assert!(!store.lookup_ids(&int_row([404]), &mut ids));
        let stats = store.dict_stats();
        assert_eq!(stats.entries, 4);
        let snap = store.dict_snapshot();
        assert_eq!(snap.len(), 4);
    }

    #[test]
    fn apply_batch_normalizes_versions_and_warms_cache() {
        let mut store = store();
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([1, 2])); // already present → no-op
        batch.insert("Graph", int_row([9, 9]));
        batch.delete("Graph", int_row([2, 3]));
        batch.delete("Node", int_row([7])); // absent → no-op
        let applied = store.apply_batch(&batch).unwrap();
        assert_eq!(applied.epoch, 1);
        assert_eq!(store.epoch(), 1);
        assert_eq!(applied.effect.inserted, 1);
        assert_eq!(applied.effect.deleted, 1);
        assert!(applied.touches("Graph") && applied.touches("Node"));
        assert_eq!(applied.normalized_ops("Node"), Some(&[][..]));
        assert!(applied.normalized_ops("Missing").is_none());
        assert!(applied.interned_ops("Node").unwrap().is_empty());
        let mut ops = applied.normalized_ops("Graph").unwrap().to_vec();
        ops.sort();
        assert_eq!(ops, vec![(int_row([2, 3]), -1), (int_row([9, 9]), 1)]);
        // The membership cache stays warm for the next O(|Δ|) application.
        assert!(store.database().get("Graph").unwrap().row_cache_is_warm());
        let handle = store.relation("Graph").unwrap();
        assert_eq!(handle.epoch(), 1);
        assert_eq!(handle.len(), 2);
        assert_eq!(handle.flat().len(), 2);
    }

    #[test]
    fn failed_validation_leaves_store_untouched() {
        let mut store = store();
        let mut bad = DeltaBatch::new();
        bad.insert("Graph", int_row([1, 2, 3]));
        assert!(matches!(
            store.apply_batch(&bad),
            Err(StorageError::ArityMismatch { .. })
        ));
        let mut unknown = DeltaBatch::new();
        unknown.insert("Missing", int_row([1]));
        assert!(store.apply_batch(&unknown).is_err());
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.input_size(), 3);
        assert_eq!(store.dict().len(), 3, "no stray interning on failure");
    }

    #[test]
    fn tick_advances_epoch_without_changes() {
        let mut store = store();
        assert_eq!(store.tick(), 1);
        assert_eq!(store.tick(), 2);
        assert_eq!(store.input_size(), 3);
        let noop = AppliedBatch::noop(2);
        assert!(noop.is_noop());
        assert!(!noop.touches("Graph"));
    }

    #[test]
    fn add_and_remove_relations() {
        let mut store = SharedDatabase::empty();
        store
            .add_relation(Relation::from_int_rows(
                "R",
                &["a"],
                vec![vec![1], vec![1], vec![2]],
            ))
            .unwrap();
        assert_eq!(store.relation("R").unwrap().len(), 2);
        assert_eq!(store.flat("R").unwrap().len(), 2);
        assert!(store
            .add_relation(Relation::from_int_rows("R", &["a"], vec![]))
            .is_err());
        let removed = store.remove_relation("R").unwrap();
        assert_eq!(removed.name(), "R");
        assert!(store.relation("R").is_err());
        assert!(store.flat("R").is_none());
        assert_eq!(store.into_database().relation_count(), 0);
    }

    #[test]
    fn shared_indexes_are_acquired_probed_and_batch_maintained() {
        let mut store = store();
        let key = IndexKey {
            relation: "Graph".into(),
            equalities: vec![],
            key_positions: vec![1],
        };
        let id = store.acquire_index(key.clone()).unwrap();
        let again = store.acquire_index(key).unwrap();
        assert_eq!(id, again, "same key shares one refcounted entry");
        assert_eq!(store.index_count(), 1);
        assert_eq!(store.index_stats().total_refs, 2);
        assert!(store.index_bytes() > 0);
        assert_eq!(store.probe_index(id, &int_row([2])), &[int_row([1, 2])]);
        // A probe key containing a never-interned value matches nothing.
        assert!(store.probe_index(id, &int_row([404])).is_empty());

        // One apply_batch maintains the index (no per-view work anywhere).
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([7, 2]));
        batch.delete("Graph", int_row([1, 2]));
        store.apply_batch(&batch).unwrap();
        assert_eq!(store.probe_index(id, &int_row([2])), &[int_row([7, 2])]);
        let handle = store.relation("Graph").unwrap();
        assert_eq!(handle.probe(id, &int_row([2])), &[int_row([7, 2])]);
        // The same probe in id space returns the interned block directly.
        let mut key_ids = Vec::new();
        assert!(store.lookup_ids(&int_row([2]), &mut key_ids));
        let blocks = store.probe_index_ids(id, &key_ids);
        assert_eq!(blocks.len(), 2);
        assert_eq!(store.resolve_row(blocks), int_row([7, 2]));

        // Bad keys are rejected; removal of the relation kills its indexes.
        assert!(store
            .acquire_index(IndexKey {
                relation: "Graph".into(),
                equalities: vec![(0, 5)],
                key_positions: vec![0],
            })
            .is_err());
        assert!(store
            .acquire_index(IndexKey {
                relation: "Missing".into(),
                equalities: vec![],
                key_positions: vec![0],
            })
            .is_err());
        store.remove_relation("Graph");
        assert!(store.probe_index(id, &int_row([2])).is_empty());
        assert_eq!(store.index_count(), 0);

        // Releasing after the fact is a harmless no-op.
        store.release_index(id);
        store.release_index(again);
    }

    #[test]
    fn index_snapshots_read_their_epoch_while_the_store_advances() {
        let mut store = store();
        let id = store
            .acquire_index(IndexKey {
                relation: "Graph".into(),
                equalities: vec![],
                key_positions: vec![0],
            })
            .unwrap();
        let snap = store.index_snapshot();
        assert_eq!(snap.epoch(), 0);
        let mut one = Vec::new();
        assert!(store.lookup_ids(&int_row([1]), &mut one));
        assert_eq!(store.resolve_row(snap.probe_ids(id, &one)), int_row([1, 2]));

        // Commit a batch: the live index moves to epoch 1, the snapshot stays
        // pinned at epoch 0 (the write copied the entry, not mutated it).
        let mut batch = DeltaBatch::new();
        batch.delete("Graph", int_row([1, 2]));
        batch.insert("Graph", int_row([1, 9]));
        store.apply_batch(&batch).unwrap();
        assert_eq!(store.resolve_row(snap.probe_ids(id, &one)), int_row([1, 2]));
        assert_eq!(snap.get(id).unwrap().epoch(), 0);
        assert_eq!(store.probe_index(id, &int_row([1])), &[int_row([1, 9])]);
        assert_eq!(store.index(id).unwrap().epoch(), 1);
        assert_eq!(store.index_snapshot().epoch(), 1);
    }

    #[test]
    fn relation_ref_accessors() {
        let store = store();
        let r = store.relation("Graph").unwrap();
        assert_eq!(r.name(), "Graph");
        assert_eq!(r.schema().arity(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.rows().len(), r.len());
        assert_eq!(r.relation().name(), "Graph");
        assert_eq!(r.flat().arity(), 2);
        assert!(format!("{r:?}").contains("epoch 0"));
        assert!(format!("{store:?}").contains("SharedDatabase"));
    }

    /// A scripted batch sequence over two relations with an index on each.
    fn run_commit_script(workers: usize) -> SharedDatabase {
        let mut db = Database::new();
        db.add(Relation::from_int_rows("Graph", &["src", "dst"], vec![]))
            .unwrap();
        db.add(Relation::from_int_rows("Node", &["id"], vec![]))
            .unwrap();
        let mut store = SharedDatabase::new(db);
        store.set_commit_workers(workers);
        store
            .acquire_index(IndexKey {
                relation: "Graph".into(),
                equalities: vec![],
                key_positions: vec![1],
            })
            .unwrap();
        store
            .acquire_index(IndexKey {
                relation: "Node".into(),
                equalities: vec![],
                key_positions: vec![0],
            })
            .unwrap();
        for step in 0..6i64 {
            let mut batch = DeltaBatch::new();
            for i in 0..40 {
                batch.insert("Graph", int_row([step * 40 + i, i % 7]));
                batch.insert("Node", int_row([step * 40 + i]));
            }
            if step > 1 {
                for i in 0..30 {
                    batch.delete("Graph", int_row([(step - 2) * 40 + i, i % 7]));
                    batch.delete("Node", int_row([(step - 2) * 40 + i]));
                }
            }
            store.apply_batch(&batch).unwrap();
        }
        store
    }

    #[test]
    fn sharded_commit_is_bit_identical_across_worker_counts() {
        let seq = run_commit_script(1);
        for workers in [2, 4, 7] {
            let par = run_commit_script(workers);
            assert_eq!(par.epoch(), seq.epoch());
            for name in ["Graph", "Node"] {
                let (s, p) = (seq.flat(name).unwrap(), par.flat(name).unwrap());
                assert_eq!(p.len(), s.len(), "{name} len at {workers} workers");
                assert_eq!(
                    p.to_insert_delta().iter().collect::<Vec<_>>(),
                    s.to_insert_delta().iter().collect::<Vec<_>>(),
                    "{name} mirror content at {workers} workers"
                );
            }
            assert_eq!(par.index_bytes(), seq.index_bytes());
            assert_eq!(
                par.index_stats().indexed_rows,
                seq.index_stats().indexed_rows
            );
            assert_eq!(par.commit_shard_rows(), seq.commit_shard_rows());
            assert_eq!(par.flat_live_bytes(), seq.flat_live_bytes());
            assert_eq!(par.flat_bytes(), seq.flat_bytes());
        }
    }

    #[test]
    fn commit_shard_rows_accounts_every_routed_row() {
        let store = run_commit_script(4);
        let shard_rows = store.commit_shard_rows();
        assert_eq!(shard_rows.len(), STORE_SHARDS);
        // 6 steps × 80 inserts + 4 steps × 60 deletes, all net-effective.
        let total: u64 = shard_rows.iter().sum();
        assert_eq!(total, 6 * 80 + 4 * 60);
        assert!(
            shard_rows.iter().filter(|&&n| n > 0).count() >= 2,
            "hash routing should spread rows over shards: {shard_rows:?}"
        );
    }

    #[test]
    fn flat_relation_bytes_reports_live_and_allocated() {
        let store = run_commit_script(1);
        let per_rel = store.flat_relation_bytes();
        assert_eq!(per_rel.len(), 2);
        let mut live_total = 0;
        let mut alloc_total = 0;
        for (name, live, allocated) in &per_rel {
            assert!(!name.is_empty());
            assert!(
                live <= allocated,
                "{name}: live {live} > allocated {allocated}"
            );
            live_total += live;
            alloc_total += allocated;
        }
        assert_eq!(live_total, store.flat_live_bytes());
        assert_eq!(alloc_total, store.flat_bytes());
    }
}
