//! The shared, epoch-versioned store backing multi-view maintenance.
//!
//! `dcq-incremental`'s first iteration gave every maintained view a private
//! snapshot of the relations it referenced: `N` views over the same database held
//! `N` copies, and every view re-normalized every batch against its own membership
//! sets.  [`SharedDatabase`] is the replacement: **one** [`Database`] of record,
//! owned by an engine, with
//!
//! * a monotonically increasing **epoch** — every applied batch (or explicit
//!   [`SharedDatabase::tick`]) advances it, so consumers can record exactly which
//!   prefix of the update stream they reflect;
//! * **set-semantics invariants** enforced at the boundary — relations are
//!   deduplicated on ingest and every update goes through normalization, so reads
//!   never observe duplicates;
//! * **`O(|Δ|)` updates** — each relation's membership cache
//!   ([`Relation::cached_row_set`]) is warmed on first touch and maintained
//!   incrementally afterwards;
//! * an [`AppliedBatch`] summary per update carrying the **normalized per-relation
//!   deltas**, computed once and fanned out to every registered view instead of
//!   being recomputed per view.
//!
//! Reads go through [`RelationRef`], a lightweight handle pairing the relation with
//! the epoch it was observed at; delta-join consumers additionally probe the
//! store's **index registry** ([`IndexRegistry`]) — refcounted hash indexes in
//! stored-column coordinates, acquired per query plan and maintained exactly once
//! per applied batch no matter how many views share them.

use crate::database::Database;
use crate::delta::{normalize_delta, DeltaBatch, DeltaEffect};
use crate::registry::{IndexId, IndexKey, IndexRegistry, IndexRegistryStats, IndexSnapshot};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::Schema;
use crate::{Result, StorageError};
use std::fmt;

/// A monotonically increasing version number of a [`SharedDatabase`].
///
/// Epoch `0` is the registration state; every applied batch (and every explicit
/// [`SharedDatabase::tick`]) advances it by one.
pub type Epoch = u64;

/// A single database of record shared by many maintained views.
///
/// The store deliberately exposes **no** direct mutable access to its relations:
/// every change goes through [`SharedDatabase::apply_batch`], which normalizes,
/// applies, and versions the update in one pass.  That is what lets an engine hand
/// the resulting [`AppliedBatch`] to every registered view without each view
/// re-deriving the net effect.
#[derive(Clone, Default)]
pub struct SharedDatabase {
    db: Database,
    epoch: Epoch,
    indexes: IndexRegistry,
}

impl SharedDatabase {
    /// Create an empty store at epoch `0`.
    pub fn empty() -> Self {
        SharedDatabase::default()
    }

    /// Take ownership of a database, deduplicating every relation (the store
    /// maintains set semantics as an invariant) and starting at epoch `0`.
    pub fn new(mut db: Database) -> Self {
        for name in db.relation_names() {
            db.get_mut(&name)
                .expect("name comes from the database")
                .dedup();
        }
        SharedDatabase {
            db,
            epoch: 0,
            indexes: IndexRegistry::new(),
        }
    }

    /// Take ownership of a database like [`SharedDatabase::new`], but start
    /// the epoch counter at `epoch` instead of `0`.
    ///
    /// This is the recovery constructor: a store rebuilt from a checkpoint
    /// taken at epoch `e` must keep numbering where the pre-crash store left
    /// off, or replayed batches and previously acknowledged epochs would no
    /// longer line up.
    pub fn new_at(db: Database, epoch: Epoch) -> Self {
        let mut store = SharedDatabase::new(db);
        store.epoch = epoch;
        store
    }

    /// The current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Advance the epoch without touching any relation.
    ///
    /// Used when a consumer wants the version counter to cover updates that were
    /// inspected but contained nothing for this store (e.g. a maintained view fed a
    /// batch that only touches unreferenced relations).
    pub fn tick(&mut self) -> Epoch {
        self.epoch += 1;
        self.epoch
    }

    /// Read-only access to the underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Consume the store, returning the underlying database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Register a new relation (deduplicated on ingest).
    ///
    /// Fails if a relation with the same name already exists, like
    /// [`Database::add`].
    pub fn add_relation(&mut self, mut relation: Relation) -> Result<()> {
        relation.dedup();
        self.db.add(relation)
    }

    /// Remove a relation, returning it if present.  Registry indexes over it are
    /// dropped (outstanding [`IndexId`]s over it become dead and probe empty).
    pub fn remove_relation(&mut self, name: &str) -> Option<Relation> {
        self.indexes.drop_relation(name);
        self.db.remove(name)
    }

    /// A versioned read handle on one relation.
    pub fn relation(&self, name: &str) -> Result<RelationRef<'_>> {
        Ok(RelationRef {
            store: self,
            relation: self.db.get(name)?,
            epoch: self.epoch,
        })
    }

    /// Find-or-build the shared index identified by `key`, bumping its refcount.
    ///
    /// Validates the key against the relation's schema (every referenced position
    /// must exist).  A fresh index costs one `O(N)` build over the current
    /// contents; a live one is reused as-is — it has been maintained under every
    /// batch since it was built.  Pair every acquisition with a
    /// [`SharedDatabase::release_index`].
    pub fn acquire_index(&mut self, key: IndexKey) -> Result<IndexId> {
        let relation = self.db.get(&key.relation)?;
        let arity = relation.schema().arity();
        let out_of_range = key
            .key_positions
            .iter()
            .chain(key.equalities.iter().flat_map(|(a, b)| [a, b]))
            .any(|&p| p >= arity);
        if out_of_range {
            return Err(StorageError::ArityMismatch {
                relation: key.relation.clone(),
                expected: arity,
                actual: key
                    .key_positions
                    .iter()
                    .chain(key.equalities.iter().flat_map(|(a, b)| [a, b]))
                    .max()
                    .copied()
                    .unwrap_or(0)
                    + 1,
            });
        }
        Ok(self.indexes.acquire(key, relation, self.epoch))
    }

    /// Drop one reference on a shared index; the structure is freed when the last
    /// holder releases.
    pub fn release_index(&mut self, id: IndexId) {
        self.indexes.release(id);
    }

    /// Stored rows of the index `id` matching `key`, or an empty slice.
    ///
    /// Rows come back in stored-column coordinates (full rows, equality-filtered
    /// at maintenance time); consumers project with their plan's positions.
    pub fn probe_index(&self, id: IndexId, key: &Row) -> &[Row] {
        self.indexes.probe(id, key)
    }

    /// The registry entry behind `id`, if it is live.
    pub fn index(&self, id: IndexId) -> Option<&crate::registry::SharedIndex> {
        self.indexes.get(id)
    }

    /// Number of live shared indexes.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Estimated heap footprint of all live shared indexes in bytes.
    pub fn index_bytes(&self) -> usize {
        self.indexes.approx_bytes()
    }

    /// Point-in-time registry counters.
    pub fn index_stats(&self) -> IndexRegistryStats {
        self.indexes.stats()
    }

    /// Cumulative index-maintenance telemetry (COW clones vs. in-place writes,
    /// snapshot pins); all zero without the `telemetry` feature.
    pub fn index_telemetry(&self) -> crate::registry::IndexTelemetry {
        self.indexes.telemetry()
    }

    /// An epoch-stamped, immutable snapshot of every live shared index.
    ///
    /// Snapshots are cheap (one `Arc` clone per live index), `Send + Sync`, and
    /// probe **lock-free** through the same [`IndexId`]s the store hands out —
    /// and they stay pinned at this epoch: later [`SharedDatabase::apply_batch`]
    /// calls maintain the live registry copy-on-write, never the snapshotted
    /// entries.  This is how a long-running front-end overlaps reads with the
    /// update stream: queries probe their snapshot without blocking (or being
    /// torn by) writers, while the steady state without outstanding snapshots
    /// pays zero copies.
    pub fn index_snapshot(&self) -> IndexSnapshot {
        self.indexes.snapshot(self.epoch)
    }

    /// `true` iff a relation with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.db.contains(name)
    }

    /// Names of all registered relations, in sorted order.
    pub fn relation_names(&self) -> Vec<String> {
        self.db.relation_names()
    }

    /// Total number of tuples across all relations.
    pub fn input_size(&self) -> usize {
        self.db.input_size()
    }

    /// Estimated heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.db.approx_bytes()
    }

    /// Apply one delta batch: validate, normalize each relation's operations
    /// against its (cached) membership, apply the net effect in place, and advance
    /// the epoch.
    ///
    /// The whole batch is validated before anything mutates — unknown relations or
    /// arity mismatches leave the store (and its epoch) untouched.  The returned
    /// [`AppliedBatch`] carries the normalized per-relation deltas so that `N`
    /// consumers can share one normalization pass.
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<AppliedBatch> {
        for (name, raw) in batch.iter() {
            let rel = self.db.get(name)?;
            for (row, _) in raw {
                if row.arity() != rel.schema().arity() {
                    return Err(StorageError::ArityMismatch {
                        relation: name.to_string(),
                        expected: rel.schema().arity(),
                        actual: row.arity(),
                    });
                }
            }
        }
        let mut effect = DeltaEffect::default();
        let mut normalized = Vec::with_capacity(batch.relations().count());
        let next_epoch = self.epoch + 1;
        for (name, raw) in batch.iter() {
            let rel = self.db.get_mut(name).expect("validated above");
            let delta = normalize_delta(rel.cached_row_set(), raw);
            effect.absorb(rel.apply_normalized_delta(&delta));
            // Maintain every registered index over this relation exactly once —
            // this is the pass N sharing views used to pay N times.  Touched
            // entries are stamped with the epoch this batch advances to; an
            // outstanding snapshot forces a copy-on-write, so its readers keep
            // their epoch while the live registry moves on.
            self.indexes.apply_relation_delta(name, &delta, next_epoch);
            normalized.push((name.to_string(), delta));
        }
        self.epoch = next_epoch;
        Ok(AppliedBatch {
            epoch: self.epoch,
            effect,
            normalized,
        })
    }
}

impl fmt::Debug for SharedDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SharedDatabase[epoch {}, {} relations, {} tuples, {} indexes]",
            self.epoch,
            self.db.relation_count(),
            self.db.input_size(),
            self.indexes.len()
        )
    }
}

/// A lightweight, versioned read handle on one relation of a [`SharedDatabase`].
///
/// The handle records the store epoch it was taken at, so a consumer holding
/// results derived through it can tell exactly which update-stream prefix they
/// reflect.
#[derive(Clone, Copy)]
pub struct RelationRef<'a> {
    store: &'a SharedDatabase,
    relation: &'a Relation,
    epoch: Epoch,
}

impl<'a> RelationRef<'a> {
    /// The underlying relation.
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// Probe a shared index of the owning store through this handle.
    ///
    /// The index must be over **this** relation (checked in debug builds); rows
    /// come back as full stored rows, equality-filtered at maintenance time.
    pub fn probe(&self, id: IndexId, key: &Row) -> &'a [Row] {
        debug_assert!(
            self.store
                .index(id)
                .is_none_or(|e| e.key().relation == self.relation.name()),
            "probe of an index over a different relation"
        );
        self.store.probe_index(id, key)
    }

    /// The store epoch this handle was taken at.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The relation's name.
    pub fn name(&self) -> &'a str {
        self.relation.name()
    }

    /// The relation's schema.
    pub fn schema(&self) -> &'a Schema {
        self.relation.schema()
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.relation.len()
    }

    /// `true` iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// The stored rows (distinct — the store maintains set semantics).
    pub fn rows(&self) -> &'a [Row] {
        self.relation.rows()
    }
}

impl fmt::Debug for RelationRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RelationRef[{} @ epoch {}, {} rows]",
            self.relation.name(),
            self.epoch,
            self.relation.len()
        )
    }
}

/// The record of one batch applied to a [`SharedDatabase`]: the epoch it advanced
/// the store to, the net effect, and the **normalized** per-relation deltas.
///
/// Normalization happens once here; every registered view then consumes the same
/// net deltas instead of re-deriving them against private membership sets.
#[derive(Clone, Debug, Default)]
pub struct AppliedBatch {
    /// The epoch the store advanced to by applying this batch.
    pub epoch: Epoch,
    /// Net tuples inserted / deleted across all touched relations.
    pub effect: DeltaEffect,
    /// Per touched relation (in batch order): the net set-semantics delta.  A
    /// relation whose operations all normalized away is present with an empty
    /// delta — consumers can distinguish "touched but redundant" from "untouched".
    pub normalized: Vec<(String, Vec<(Row, i64)>)>,
}

impl AppliedBatch {
    /// An applied batch that touched nothing (an epoch tick).
    pub fn noop(epoch: Epoch) -> Self {
        AppliedBatch {
            epoch,
            ..AppliedBatch::default()
        }
    }

    /// `true` iff the batch touched `relation` (even if its operations all
    /// normalized away).
    pub fn touches(&self, relation: &str) -> bool {
        self.normalized.iter().any(|(name, _)| name == relation)
    }

    /// The normalized delta against `relation`, if the batch touched it.
    pub fn normalized_ops(&self, relation: &str) -> Option<&[(Row, i64)]> {
        self.normalized
            .iter()
            .find(|(name, _)| name == relation)
            .map(|(_, ops)| ops.as_slice())
    }

    /// `true` iff no tuple actually changed.
    pub fn is_noop(&self) -> bool {
        self.effect.total() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    fn store() -> SharedDatabase {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![1, 2]], // duplicate on purpose
        ))
        .unwrap();
        db.add(Relation::from_int_rows("Node", &["id"], vec![vec![1]]))
            .unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn ingest_dedups_and_starts_at_epoch_zero() {
        let store = store();
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.relation("Graph").unwrap().len(), 2);
        assert!(store.contains("Node"));
        assert_eq!(store.relation_names(), vec!["Graph", "Node"]);
    }

    #[test]
    fn apply_batch_normalizes_versions_and_warms_cache() {
        let mut store = store();
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([1, 2])); // already present → no-op
        batch.insert("Graph", int_row([9, 9]));
        batch.delete("Graph", int_row([2, 3]));
        batch.delete("Node", int_row([7])); // absent → no-op
        let applied = store.apply_batch(&batch).unwrap();
        assert_eq!(applied.epoch, 1);
        assert_eq!(store.epoch(), 1);
        assert_eq!(applied.effect.inserted, 1);
        assert_eq!(applied.effect.deleted, 1);
        assert!(applied.touches("Graph") && applied.touches("Node"));
        assert_eq!(applied.normalized_ops("Node"), Some(&[][..]));
        assert!(applied.normalized_ops("Missing").is_none());
        let mut ops = applied.normalized_ops("Graph").unwrap().to_vec();
        ops.sort();
        assert_eq!(ops, vec![(int_row([2, 3]), -1), (int_row([9, 9]), 1)]);
        // The membership cache stays warm for the next O(|Δ|) application.
        assert!(store.database().get("Graph").unwrap().row_cache_is_warm());
        let handle = store.relation("Graph").unwrap();
        assert_eq!(handle.epoch(), 1);
        assert_eq!(handle.len(), 2);
    }

    #[test]
    fn failed_validation_leaves_store_untouched() {
        let mut store = store();
        let mut bad = DeltaBatch::new();
        bad.insert("Graph", int_row([1, 2, 3]));
        assert!(matches!(
            store.apply_batch(&bad),
            Err(StorageError::ArityMismatch { .. })
        ));
        let mut unknown = DeltaBatch::new();
        unknown.insert("Missing", int_row([1]));
        assert!(store.apply_batch(&unknown).is_err());
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.input_size(), 3);
    }

    #[test]
    fn tick_advances_epoch_without_changes() {
        let mut store = store();
        assert_eq!(store.tick(), 1);
        assert_eq!(store.tick(), 2);
        assert_eq!(store.input_size(), 3);
        let noop = AppliedBatch::noop(2);
        assert!(noop.is_noop());
        assert!(!noop.touches("Graph"));
    }

    #[test]
    fn add_and_remove_relations() {
        let mut store = SharedDatabase::empty();
        store
            .add_relation(Relation::from_int_rows(
                "R",
                &["a"],
                vec![vec![1], vec![1], vec![2]],
            ))
            .unwrap();
        assert_eq!(store.relation("R").unwrap().len(), 2);
        assert!(store
            .add_relation(Relation::from_int_rows("R", &["a"], vec![]))
            .is_err());
        let removed = store.remove_relation("R").unwrap();
        assert_eq!(removed.name(), "R");
        assert!(store.relation("R").is_err());
        assert_eq!(store.into_database().relation_count(), 0);
    }

    #[test]
    fn shared_indexes_are_acquired_probed_and_batch_maintained() {
        let mut store = store();
        let key = IndexKey {
            relation: "Graph".into(),
            equalities: vec![],
            key_positions: vec![1],
        };
        let id = store.acquire_index(key.clone()).unwrap();
        let again = store.acquire_index(key).unwrap();
        assert_eq!(id, again, "same key shares one refcounted entry");
        assert_eq!(store.index_count(), 1);
        assert_eq!(store.index_stats().total_refs, 2);
        assert!(store.index_bytes() > 0);
        assert_eq!(store.probe_index(id, &int_row([2])), &[int_row([1, 2])]);

        // One apply_batch maintains the index (no per-view work anywhere).
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([7, 2]));
        batch.delete("Graph", int_row([1, 2]));
        store.apply_batch(&batch).unwrap();
        assert_eq!(store.probe_index(id, &int_row([2])), &[int_row([7, 2])]);
        let handle = store.relation("Graph").unwrap();
        assert_eq!(handle.probe(id, &int_row([2])), &[int_row([7, 2])]);

        // Bad keys are rejected; removal of the relation kills its indexes.
        assert!(store
            .acquire_index(IndexKey {
                relation: "Graph".into(),
                equalities: vec![(0, 5)],
                key_positions: vec![0],
            })
            .is_err());
        assert!(store
            .acquire_index(IndexKey {
                relation: "Missing".into(),
                equalities: vec![],
                key_positions: vec![0],
            })
            .is_err());
        store.remove_relation("Graph");
        assert!(store.probe_index(id, &int_row([2])).is_empty());
        assert_eq!(store.index_count(), 0);

        // Releasing after the fact is a harmless no-op.
        store.release_index(id);
        store.release_index(again);
    }

    #[test]
    fn index_snapshots_read_their_epoch_while_the_store_advances() {
        let mut store = store();
        let id = store
            .acquire_index(IndexKey {
                relation: "Graph".into(),
                equalities: vec![],
                key_positions: vec![0],
            })
            .unwrap();
        let snap = store.index_snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.probe(id, &int_row([1])), &[int_row([1, 2])]);

        // Commit a batch: the live index moves to epoch 1, the snapshot stays
        // pinned at epoch 0 (the write copied the entry, not mutated it).
        let mut batch = DeltaBatch::new();
        batch.delete("Graph", int_row([1, 2]));
        batch.insert("Graph", int_row([1, 9]));
        store.apply_batch(&batch).unwrap();
        assert_eq!(snap.probe(id, &int_row([1])), &[int_row([1, 2])]);
        assert_eq!(snap.get(id).unwrap().epoch(), 0);
        assert_eq!(store.probe_index(id, &int_row([1])), &[int_row([1, 9])]);
        assert_eq!(store.index(id).unwrap().epoch(), 1);
        assert_eq!(store.index_snapshot().epoch(), 1);
    }

    #[test]
    fn relation_ref_accessors() {
        let store = store();
        let r = store.relation("Graph").unwrap();
        assert_eq!(r.name(), "Graph");
        assert_eq!(r.schema().arity(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.rows().len(), r.len());
        assert_eq!(r.relation().name(), "Graph");
        assert!(format!("{r:?}").contains("epoch 0"));
        assert!(format!("{store:?}").contains("SharedDatabase"));
    }
}
