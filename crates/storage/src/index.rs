//! Hash indexes over relations.
//!
//! Every linear-time building block of the paper — semi-joins, anti-joins, the
//! difference of base relations, the per-tuple membership probes of the heuristic in
//! §4.2 — relies on constant-time lookups of tuples by a subset of their attributes.
//! [`HashIndex`] provides exactly that: a multi-map from key values (a projection of
//! each row onto the key attributes) to the indices of the matching rows.

use crate::hash::{map_with_capacity, FastHashMap};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::{Attr, Schema};
use crate::Result;
use crate::StorageError;

/// A hash index on a subset of a relation's attributes.
pub struct HashIndex {
    key_attrs: Schema,
    key_positions: Vec<usize>,
    map: FastHashMap<Row, Vec<usize>>,
    indexed_rows: usize,
}

impl HashIndex {
    /// Build an index over `relation` keyed by `key_attrs`.
    pub fn build(relation: &Relation, key_attrs: &[Attr]) -> Result<Self> {
        let key_positions = relation.schema().positions_of(key_attrs).ok_or_else(|| {
            StorageError::UnknownAttribute {
                attr: key_attrs
                    .iter()
                    .find(|a| !relation.schema().contains(a))
                    .map(|a| a.name().to_string())
                    .unwrap_or_default(),
                schema: relation.schema().clone(),
            }
        })?;
        let mut map: FastHashMap<Row, Vec<usize>> = map_with_capacity(relation.len());
        for (i, row) in relation.iter().enumerate() {
            map.entry(row.project(&key_positions)).or_default().push(i);
        }
        Ok(HashIndex {
            key_attrs: Schema::new(key_attrs.to_vec()),
            key_positions,
            map,
            indexed_rows: relation.len(),
        })
    }

    /// The key attributes of this index.
    pub fn key_attrs(&self) -> &Schema {
        &self.key_attrs
    }

    /// Positions of the key attributes inside the indexed relation's schema.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of rows that were indexed.
    pub fn indexed_rows(&self) -> usize {
        self.indexed_rows
    }

    /// Row indices matching `key`, or an empty slice.
    pub fn get(&self, key: &Row) -> &[usize] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// `true` iff some row matches `key`.
    pub fn contains_key(&self, key: &Row) -> bool {
        self.map.contains_key(key)
    }

    /// Look up by projecting `probe_row` (from a relation with `probe_positions`
    /// pointing at the key attributes) onto the key.
    pub fn probe<'a>(&'a self, probe_row: &Row, probe_positions: &[usize]) -> &'a [usize] {
        self.get(&probe_row.project(probe_positions))
    }

    /// Iterate over `(key, row-indices)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, &Vec<usize>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    fn graph() -> Relation {
        Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![1, 3], vec![2, 3], vec![3, 1]],
        )
    }

    #[test]
    fn build_and_lookup_single_attr() {
        let g = graph();
        let idx = HashIndex::build(&g, &[Attr::new("src")]).unwrap();
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.indexed_rows(), 4);
        assert_eq!(idx.get(&int_row([1])).len(), 2);
        assert_eq!(idx.get(&int_row([2])), &[2]);
        assert!(idx.get(&int_row([9])).is_empty());
        assert!(idx.contains_key(&int_row([3])));
    }

    #[test]
    fn build_and_lookup_multi_attr() {
        let g = graph();
        let idx = HashIndex::build(&g, &[Attr::new("dst"), Attr::new("src")]).unwrap();
        assert_eq!(idx.key_attrs(), &Schema::from_names(["dst", "src"]));
        assert_eq!(idx.get(&int_row([2, 1])), &[0]);
        assert!(idx.get(&int_row([1, 2])).is_empty());
    }

    #[test]
    fn empty_key_indexes_all_rows_under_one_key() {
        let g = graph();
        let idx = HashIndex::build(&g, &[]).unwrap();
        assert_eq!(idx.distinct_keys(), 1);
        assert_eq!(idx.get(&Row::empty()).len(), 4);
    }

    #[test]
    fn unknown_attribute_rejected() {
        let g = graph();
        assert!(HashIndex::build(&g, &[Attr::new("weight")]).is_err());
    }

    #[test]
    fn probe_with_positions() {
        let g = graph();
        // Index Graph on src; probe with tuples shaped (a, b, c) where position 2 holds the value to match.
        let idx = HashIndex::build(&g, &[Attr::new("src")]).unwrap();
        let probe = int_row([7, 8, 2]);
        assert_eq!(idx.probe(&probe, &[2]), &[2]);
    }

    #[test]
    fn iterate_keys() {
        let g = graph();
        let idx = HashIndex::build(&g, &[Attr::new("src")]).unwrap();
        let total: usize = idx.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 4);
    }
}
