//! The shared index registry of a [`SharedDatabase`](crate::SharedDatabase).
//!
//! Delta-join maintenance (the counting engines of `dcq-incremental`) needs, per
//! atom occurrence, a hash index over a stored relation keyed by the occurrence's
//! join key.  When the views owned those indexes, `N` distinct-but-overlapping
//! views paid `N×` memory and `N×` index maintenance per batch for what is, per
//! distinct `(relation, equality signature, key columns)` triple, the **same**
//! structure.  The registry moves index ownership into the storage layer:
//!
//! * an index is identified by its [`IndexKey`] — the stored relation, the
//!   repeated-variable equality constraints of the atom (`(earlier, later)`
//!   stored-column pairs that must be equal), and the key column positions.  All
//!   three are expressed in **stored-column coordinates**, so α-renamed atoms of
//!   different queries that probe the same structure share one entry;
//! * entries are **refcounted**: [`IndexRegistry::acquire`] builds the index from
//!   the current flat store contents on first use (`O(N)` once) and bumps a
//!   refcount afterwards, [`IndexRegistry::release`] drops the entry when its
//!   last user deregisters;
//! * maintenance happens **once per applied batch**, inside
//!   [`SharedDatabase::apply_batch`](crate::SharedDatabase::apply_batch): every
//!   registered index over a touched relation folds in the interned delta,
//!   no matter how many views probe it.
//!
//! ## Flat interned buckets
//!
//! Since the flat-storage refactor, buckets hold **contiguous dictionary-id
//! arrays**, not hashed full-row `Vec<Row>`s: a bucket is one `Vec<u32>` of row
//! blocks at stride [`SharedIndex::stride`], keyed by the packed key ids
//! ([`IdKey`]).  A probe hashes a borrowed `&[u32]` (no allocation) and returns
//! the matching block slice — cache-linear to scan, roughly an order of
//! magnitude smaller than the row-bucket representation, and free of per-row
//! pointer chasing.  Because value interning is injective, equality filters and
//! key hashing reduce to `u32` compares.  Consumers resolve ids back to
//! [`Value`](crate::Value)s only at result boundaries, through the store's
//! dictionary.
//!
//! ## Threading model: lock-free readers, exclusive writers
//!
//! Every live entry is held as an [`Arc<SharedIndex>`] and stamped with the
//! store epoch it was last maintained at.  Reads ([`IndexRegistry::probe_ids`],
//! [`IndexRegistry::get`]) take `&self` and touch no lock — under Rust's
//! aliasing rules they may run from any number of threads concurrently, which
//! is what lets an engine fan per-view delta joins out across workers while the
//! store is borrowed shared.  Writes (acquire / release / per-batch
//! maintenance) take `&mut self` — exclusive per
//! [`AppliedBatch`](crate::AppliedBatch), exactly like the store epoch — and go
//! through [`Arc::make_mut`]: when no snapshot is outstanding the entry is
//! updated in place (refcount 1, zero copies); when a reader still holds an
//! [`IndexSnapshot`], the write copies the entry first, so the snapshot keeps
//! observing the exact epoch it was taken at while the store moves on.  That is
//! the read path a long-running service front-end needs: queries grab a
//! snapshot, probe it lock-free for as long as they like, and never block (or
//! get torn by) the update stream.

use crate::fanout::WorkerPool;
use crate::flat::{IdDelta, ShardedRelationStore, STORE_SHARDS};
use crate::hash::{map_with_capacity, set_with_capacity, shard_of_ids, FastHashMap, FastHashSet};
use crate::idkey::IdKey;
use crate::row::Row;
use crate::shared::Epoch;
use crate::tele;
use std::fmt;
use std::sync::Arc;

/// The identity of one shared index, in stored-column coordinates.
///
/// Two atoms (of any queries) that scan the same relation with the same
/// repeated-variable pattern and probe on the same columns map to the same key —
/// variable spellings never participate.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct IndexKey {
    /// Name of the indexed stored relation.
    pub relation: String,
    /// `(earlier, later)` stored positions that must be equal (the atom's
    /// repeated-variable filter); rows failing it are not indexed.
    pub equalities: Vec<(usize, usize)>,
    /// Stored positions forming the probe key, in canonical (first-occurrence)
    /// order.
    pub key_positions: Vec<usize>,
}

impl IndexKey {
    /// `true` iff `row` satisfies the equality constraints.
    pub fn admits(&self, row: &Row) -> bool {
        self.equalities
            .iter()
            .all(|&(a, b)| row.get(a) == row.get(b))
    }

    /// `true` iff the interned row block satisfies the equality constraints.
    /// Interning is injective, so id equality *is* value equality.
    pub fn admits_ids(&self, ids: &[u32]) -> bool {
        self.equalities.iter().all(|&(a, b)| ids[a] == ids[b])
    }
}

impl fmt::Display for IndexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[key {:?}, eq {:?}]",
            self.relation, self.key_positions, self.equalities
        )
    }
}

/// A handle naming one acquired registry entry.
///
/// Handles stay valid from [`IndexRegistry::acquire`] until the matching
/// [`IndexRegistry::release`] drops the last reference; acquiring the same
/// [`IndexKey`] again returns an equal id.  A generation counter is stamped
/// into every handle, so a stale id whose slot was torn down (last release, or
/// [`IndexRegistry::drop_relation`]) and later reused by a different index can
/// neither probe nor release the slot's new tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IndexId {
    slot: usize,
    generation: u64,
}

/// One shared hash index over a stored relation, in dictionary-id space.
///
/// The structure itself is immutable data behind an [`Arc`]; the owning
/// registry tracks the refcount in its slot and mutates entries copy-on-write,
/// so a [`SharedIndex`] reached through an [`IndexSnapshot`] never changes
/// underneath its reader.
#[derive(Clone)]
pub struct SharedIndex {
    key: IndexKey,
    /// Ids per stored row (the indexed relation's arity).
    arity: usize,
    /// [`STORE_SHARDS`] hash-disjoint bucket sets: a row's buckets live in the
    /// shard its **key projection** routes to, so one probe touches exactly
    /// one shard (same `O(1)` lookup) and a batch delta decomposes into
    /// per-shard sub-deltas the commit path maintains on independent workers.
    /// The shard count is fixed — never worker-derived — so index contents and
    /// `approx_bytes` are bit-identical at any commit width.
    shards: Vec<Buckets>,
    /// Number of indexed rows (equality-filtered), across all shards.
    rows: usize,
    /// The store epoch this index's contents were last changed at (its build
    /// epoch until the first touching batch).
    epoch: Epoch,
}

/// Physical bucket storage of a [`SharedIndex`], chosen from the key shape.
#[derive(Clone)]
enum Buckets {
    /// The general shape: packed key projection → contiguous row blocks.
    Keyed(FastHashMap<IdKey, Vec<u32>>),
    /// Full-cover identity key (`key_positions == 0..arity`): the probe key
    /// *is* the stored block, and the store is set-semantics, so a bucket is
    /// always exactly one block equal to its own key.  Storing a membership
    /// set of packed rows drops the 24-byte `Vec` header every map slot would
    /// otherwise carry — on a whole-row index that header outweighs the row
    /// data itself several times over.  Probes answer out of the set's own
    /// key storage.
    Whole(FastHashSet<IdKey>),
}

impl Buckets {
    fn for_shape(key: &IndexKey, arity: usize, row_hint: usize) -> Buckets {
        let identity = key.key_positions.len() == arity
            && key.key_positions.iter().enumerate().all(|(i, &p)| i == p);
        if identity && arity > 0 {
            // Whole-row keys: one entry per indexed row, known up front.
            Buckets::Whole(set_with_capacity(row_hint))
        } else {
            // Keys are typically a small fraction of rows; seed low and let
            // the build grow the table, then shrink to fit.  A permanently
            // row-count-sized table is what `approx_bytes` charges at
            // 56B/slot, dwarfing the 4B/id payload.
            Buckets::Keyed(map_with_capacity(row_hint / 8))
        }
    }

    /// Insert one row block under its key projection.
    fn push_block(&mut self, arity: usize, key: &[u32], ids: &[u32]) {
        match self {
            Buckets::Keyed(map) => {
                let bucket = map.entry(IdKey::from_slice(key)).or_default();
                if arity == 0 {
                    bucket.push(0);
                } else {
                    bucket.extend_from_slice(ids);
                }
            }
            Buckets::Whole(set) => {
                // Deltas are store-normalized, so an insert is always of a row
                // the (set-semantics) store did not hold.
                let fresh = set.insert(IdKey::from_slice(ids));
                debug_assert!(fresh, "whole-row index saw a duplicate insert");
            }
        }
    }

    /// Delete one row block; `true` iff it was present.
    fn remove_block(&mut self, arity: usize, key: &[u32], ids: &[u32]) -> bool {
        let stride = arity.max(1);
        match self {
            Buckets::Keyed(map) => {
                let Some(bucket) = map.get_mut(key) else {
                    return false;
                };
                let found = bucket
                    .chunks_exact(stride)
                    .position(|block| &block[..arity] == ids);
                let removed = if let Some(pos) = found {
                    // Swap-remove in block units: the last block overwrites
                    // the deleted one, the tail is truncated — O(stride), no
                    // shift.
                    let last = bucket.len() - stride;
                    bucket.copy_within(last.., pos * stride);
                    bucket.truncate(last);
                    true
                } else {
                    false
                };
                if bucket.is_empty() {
                    map.remove(key);
                }
                removed
            }
            Buckets::Whole(set) => set.remove(ids),
        }
    }

    /// Row blocks matching the key ids, or an empty slice.
    fn probe(&self, key: &[u32]) -> &[u32] {
        match self {
            Buckets::Keyed(map) => map.get(key).map(Vec::as_slice).unwrap_or(&[]),
            // The matching block is the key itself; answer out of the set's
            // own storage so the slice outlives the caller's probe buffer.
            Buckets::Whole(set) => set.get(key).map(IdKey::as_slice).unwrap_or(&[]),
        }
    }

    fn distinct_keys(&self) -> usize {
        match self {
            Buckets::Keyed(map) => map.len(),
            Buckets::Whole(set) => set.len(),
        }
    }

    fn shrink_to_fit(&mut self) {
        match self {
            Buckets::Keyed(map) => {
                map.shrink_to_fit();
                for bucket in map.values_mut() {
                    bucket.shrink_to_fit();
                }
            }
            Buckets::Whole(set) => set.shrink_to_fit(),
        }
    }

    fn approx_bytes(&self) -> usize {
        let mut bytes = 0;
        match self {
            Buckets::Keyed(map) => {
                bytes += map.capacity()
                    * (std::mem::size_of::<IdKey>() + std::mem::size_of::<Vec<u32>>());
                for (key, bucket) in map {
                    bytes += key.heap_bytes();
                    bytes += bucket.capacity() * std::mem::size_of::<u32>();
                }
            }
            Buckets::Whole(set) => {
                bytes += set.capacity() * std::mem::size_of::<IdKey>();
                for key in set {
                    bytes += key.heap_bytes();
                }
            }
        }
        bytes
    }

    /// Fold in only the rows of `delta` whose key projection routes to
    /// `shard_idx`, returning the net indexed-row change.  Applying every
    /// shard index exactly once — sequentially or one worker per shard —
    /// produces identical contents: rows of different shards touch disjoint
    /// buckets, and within a shard rows apply in delta order either way.
    fn apply_delta_routed(
        key: &IndexKey,
        arity: usize,
        bucket: &mut Buckets,
        shard_idx: usize,
        delta: &IdDelta,
    ) -> i64 {
        let mut net = 0i64;
        let mut key_buf: Vec<u32> = Vec::with_capacity(key.key_positions.len());
        for (ids, sign) in delta.iter() {
            if !key.admits_ids(ids) {
                continue;
            }
            key_buf.clear();
            key_buf.extend(key.key_positions.iter().map(|&p| ids[p]));
            if shard_of_ids(&key_buf, STORE_SHARDS) != shard_idx {
                continue;
            }
            if sign > 0 {
                bucket.push_block(arity, &key_buf, ids);
                net += 1;
            } else if bucket.remove_block(arity, &key_buf, ids) {
                net -= 1;
            }
        }
        net
    }
}

impl SharedIndex {
    fn build(key: IndexKey, store: &ShardedRelationStore, epoch: Epoch) -> Self {
        let shards: Vec<Buckets> = (0..STORE_SHARDS)
            .map(|_| Buckets::for_shape(&key, store.arity(), store.len() / STORE_SHARDS))
            .collect();
        let mut index = SharedIndex {
            key,
            arity: store.arity(),
            shards,
            rows: 0,
            epoch,
        };
        let arity = index.arity;
        let mut key_buf: Vec<u32> = Vec::with_capacity(index.key.key_positions.len());
        store.for_each_row(|ids| {
            if index.key.admits_ids(ids) {
                key_buf.clear();
                key_buf.extend(index.key.key_positions.iter().map(|&p| ids[p]));
                let shard = shard_of_ids(&key_buf, STORE_SHARDS);
                index.shards[shard].push_block(arity, &key_buf, ids);
                index.rows += 1;
            }
        });
        // Drop build-time slack: each shard's table shrinks to its live key
        // count and every bucket to its exact id payload.  Later deltas
        // regrow them amortized, exactly like any post-build insert.
        for shard in &mut index.shards {
            shard.shrink_to_fit();
        }
        index
    }

    /// Row-block width inside buckets: the arity, with nullary relations padded
    /// to one sentinel id so "one stored row" stays representable.  Consumers
    /// chunk probe results by `stride()` and read `[..arity()]` of each block.
    pub fn stride(&self) -> usize {
        self.arity.max(1)
    }

    /// Fold one interned stored-relation delta into the index, shard by shard
    /// in shard order — identical content to the parallel per-shard commit.
    fn apply_delta(&mut self, delta: &IdDelta, epoch: Epoch) {
        self.epoch = epoch;
        let arity = self.arity;
        let mut net = 0i64;
        for (shard_idx, bucket) in self.shards.iter_mut().enumerate() {
            net += Buckets::apply_delta_routed(&self.key, arity, bucket, shard_idx, delta);
        }
        self.rows = (self.rows as i64 + net) as usize;
    }

    /// The index identity.
    pub fn key(&self) -> &IndexKey {
        &self.key
    }

    /// Ids per indexed row (the stored relation's arity).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The store epoch this index's contents were last changed at.  A snapshot
    /// taken at epoch `e` only ever exposes entries with `epoch() <= e`, no
    /// matter how far the live registry has advanced since.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Number of indexed (equality-filtered) rows.
    pub fn indexed_rows(&self) -> usize {
        self.rows
    }

    /// Number of distinct probe keys, across all shards.
    pub fn distinct_keys(&self) -> usize {
        self.shards.iter().map(Buckets::distinct_keys).sum()
    }

    /// Contiguous row blocks (at [`SharedIndex::stride`]) matching the key ids,
    /// or an empty slice.  The probe hashes the borrowed slice directly — once
    /// to route to the owning shard, once inside the shard's table — and no
    /// key is materialized.
    pub fn probe_ids(&self, key: &[u32]) -> &[u32] {
        self.shards[shard_of_ids(key, self.shards.len())].probe(key)
    }

    /// Estimated heap footprint in bytes (all shards' buckets, packed keys,
    /// id blocks).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<SharedIndex>()
            + std::mem::size_of::<Buckets>() * self.shards.len()
            + self.shards.iter().map(Buckets::approx_bytes).sum::<usize>()
    }
}

/// Cumulative telemetry counters of an [`IndexRegistry`], read through
/// [`IndexRegistry::telemetry`].
///
/// All values are zero when the crate is built without the `telemetry`
/// feature (the instrumentation compiles to no-ops).  Every field except
/// `live_snapshot_pins` is **schedule-independent**: it depends only on the
/// sequence of maintenance operations, never on thread interleaving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexTelemetry {
    /// Per-batch index writes that found the entry unshared and updated it in
    /// place (the steady-state zero-copy path).
    pub inplace_writes: u64,
    /// Per-batch index writes that had to clone the entry first because an
    /// outstanding [`IndexSnapshot`] (or registry clone) still referenced it.
    pub cow_clones: u64,
    /// Snapshots taken over the registry's lifetime.
    pub snapshots_taken: u64,
    /// Snapshots (including clones of snapshots) currently alive and pinning
    /// entry versions.
    pub live_snapshot_pins: u64,
}

/// Point-in-time counters of a registry, surfaced through engine stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexRegistryStats {
    /// Live (acquired, not yet fully released) indexes.
    pub indexes: usize,
    /// Total indexed rows across all live indexes.
    pub indexed_rows: usize,
    /// Sum of live refcounts (how many acquisitions are outstanding).
    pub total_refs: usize,
    /// Estimated heap footprint of all live indexes in bytes.
    pub bytes: usize,
}

/// One registry slot: the live index (if any), its consumer refcount, and the
/// generation stamped into the ids handed out for it, bumped on every
/// allocation so stale ids of a torn-down index cannot alias the slot's next
/// tenant.
#[derive(Clone, Default)]
struct IndexSlot {
    generation: u64,
    /// Consumers holding an [`IndexId`] on this entry (not the `Arc` strong
    /// count — snapshots clone the `Arc` without affecting teardown).
    refs: usize,
    entry: Option<Arc<SharedIndex>>,
}

/// The refcounted collection of [`SharedIndex`]es a
/// [`SharedDatabase`](crate::SharedDatabase) maintains.
#[derive(Default)]
pub struct IndexRegistry {
    slots: Vec<IndexSlot>,
    by_key: FastHashMap<IndexKey, usize>,
    /// Cumulative maintenance counters (no-ops without the `telemetry`
    /// feature); `live_pins` is shared with every outstanding snapshot's
    /// [`PinGuard`].
    inplace_writes: tele::Counter,
    cow_clones: tele::Counter,
    snapshots_taken: tele::Counter,
    live_pins: Arc<tele::Gauge>,
}

impl Clone for IndexRegistry {
    /// Clones carry the counter *values* forward but get their own live-pin
    /// gauge: snapshots of the original keep decrementing the original's
    /// gauge on drop, and the clone starts with zero outstanding pins of its
    /// own.
    fn clone(&self) -> Self {
        IndexRegistry {
            slots: self.slots.clone(),
            by_key: self.by_key.clone(),
            inplace_writes: self.inplace_writes.clone(),
            cow_clones: self.cow_clones.clone(),
            snapshots_taken: self.snapshots_taken.clone(),
            live_pins: Arc::new(tele::Gauge::default()),
        }
    }
}

impl IndexRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        IndexRegistry::default()
    }

    /// Find-or-build the index for `key`, bumping its refcount.
    ///
    /// `store` must be the current flat contents of `key.relation` and `epoch`
    /// the store epoch those contents reflect; a fresh entry is built from them
    /// in one `O(N)` pass, a live entry is reused as-is (it has been maintained
    /// under every applied batch since it was built).
    pub fn acquire(
        &mut self,
        key: IndexKey,
        store: &ShardedRelationStore,
        epoch: Epoch,
    ) -> IndexId {
        if let Some(&slot) = self.by_key.get(&key) {
            let state = &mut self.slots[slot];
            debug_assert!(state.entry.is_some(), "keyed index entry is live");
            state.refs += 1;
            return IndexId {
                slot,
                generation: state.generation,
            };
        }
        let built = Arc::new(SharedIndex::build(key.clone(), store, epoch));
        let slot = match self.slots.iter().position(|s| s.entry.is_none()) {
            Some(free) => free,
            None => {
                self.slots.push(IndexSlot::default());
                self.slots.len() - 1
            }
        };
        self.slots[slot].generation += 1;
        self.slots[slot].refs = 1;
        self.slots[slot].entry = Some(built);
        self.by_key.insert(key, slot);
        IndexId {
            slot,
            generation: self.slots[slot].generation,
        }
    }

    /// Drop one reference; the entry is torn down when the last holder releases.
    ///
    /// Releasing an id that is not live — already torn down, or whose slot has
    /// since been reused by a different index (stale generation) — is a no-op.
    /// Outstanding snapshots keep their `Arc` clone of a torn-down entry; only
    /// the live registry forgets it.
    pub fn release(&mut self, id: IndexId) {
        let Some(slot) = self
            .slots
            .get_mut(id.slot)
            .filter(|s| s.generation == id.generation && s.entry.is_some())
        else {
            return;
        };
        slot.refs -= 1;
        if slot.refs == 0 {
            let key = slot.entry.as_ref().expect("checked live above").key.clone();
            slot.entry = None;
            self.by_key.remove(&key);
        }
    }

    /// The live entry behind `id`, if any (stale generations resolve to `None`).
    pub fn get(&self, id: IndexId) -> Option<&SharedIndex> {
        self.slots
            .get(id.slot)
            .filter(|s| s.generation == id.generation)
            .and_then(|s| s.entry.as_deref())
    }

    /// Live [`IndexId`] holders of the entry behind `id` (0 when not live).
    pub fn refs_of(&self, id: IndexId) -> usize {
        self.slots
            .get(id.slot)
            .filter(|s| s.generation == id.generation && s.entry.is_some())
            .map(|s| s.refs)
            .unwrap_or(0)
    }

    /// Row blocks matching the key ids in the index `id`, or an empty slice.
    ///
    /// An id that is no longer live probes empty — by construction consumers only
    /// probe ids they hold a reference on.  Lock-free: `&self` reads never
    /// contend with anything, and no key or row is materialized.
    pub fn probe_ids(&self, id: IndexId, key: &[u32]) -> &[u32] {
        self.get(id).map(|e| e.probe_ids(key)).unwrap_or(&[])
    }

    /// Fold one relation's interned delta into every live index over it,
    /// stamping the touched entries with `epoch` (the store epoch the batch
    /// advances to).
    ///
    /// Writes are copy-on-write: an entry still referenced by an outstanding
    /// [`IndexSnapshot`] is cloned before mutation, so the snapshot keeps
    /// reading its own epoch's contents; an unshared entry (the steady-state
    /// case) is updated in place with zero copies.
    pub fn apply_relation_delta(&mut self, relation: &str, delta: &IdDelta, epoch: Epoch) {
        if delta.is_empty() {
            return;
        }
        for entry in self.slots.iter_mut().filter_map(|s| s.entry.as_mut()) {
            if entry.key.relation == relation {
                // `make_mut` clones exactly when another `Arc` (a snapshot or
                // registry clone) still references the entry; observe which
                // path this write takes before it happens.
                if Arc::strong_count(entry) > 1 {
                    self.cow_clones.inc();
                } else {
                    self.inplace_writes.inc();
                }
                Arc::make_mut(entry).apply_delta(delta, epoch);
            }
        }
    }

    /// Fold a whole batch's interned deltas into every touched live index,
    /// one worker per `(index, shard)` pair.
    ///
    /// Equivalent to calling [`IndexRegistry::apply_relation_delta`] once per
    /// relation — bit-identical contents, row counts, epoch stamps, and
    /// COW/in-place telemetry — because the per-shard sub-deltas touch
    /// disjoint buckets and preserve delta order within a shard.  The
    /// sequential parts (copy-on-write resolution, epoch stamping, row-count
    /// accounting) stay on the caller's thread; only the bucket maintenance
    /// itself fans out.
    pub fn apply_batch_deltas(
        &mut self,
        deltas: &[(String, IdDelta)],
        epoch: Epoch,
        pool: &WorkerPool,
    ) {
        struct ShardTask<'a> {
            key: &'a IndexKey,
            arity: usize,
            bucket: &'a mut Buckets,
            shard_idx: usize,
            delta: &'a IdDelta,
        }
        let mut tasks: Vec<ShardTask<'_>> = Vec::new();
        let mut rows_refs: Vec<&mut usize> = Vec::new();
        for entry in self.slots.iter_mut().filter_map(|s| s.entry.as_mut()) {
            let touching = deltas
                .iter()
                .find(|(name, delta)| *name == entry.key.relation && !delta.is_empty());
            let Some((_, delta)) = touching else {
                continue;
            };
            if Arc::strong_count(entry) > 1 {
                self.cow_clones.inc();
            } else {
                self.inplace_writes.inc();
            }
            let index = Arc::make_mut(entry);
            index.epoch = epoch;
            let SharedIndex {
                key,
                arity,
                shards,
                rows,
                ..
            } = index;
            rows_refs.push(rows);
            for (shard_idx, bucket) in shards.iter_mut().enumerate() {
                tasks.push(ShardTask {
                    key,
                    arity: *arity,
                    bucket,
                    shard_idx,
                    delta,
                });
            }
        }
        if tasks.is_empty() {
            return;
        }
        let nets = pool.run(tasks, |_, t| {
            Buckets::apply_delta_routed(t.key, t.arity, t.bucket, t.shard_idx, t.delta)
        });
        for (i, rows) in rows_refs.into_iter().enumerate() {
            let net: i64 = nets[i * STORE_SHARDS..(i + 1) * STORE_SHARDS].iter().sum();
            *rows = (*rows as i64 + net) as usize;
        }
    }

    /// Drop indexes over `relation` (the relation is being removed from the
    /// store).  Outstanding ids over it become dead: they probe empty, and the
    /// generation stamp keeps them dead even after their slot is reused.
    pub fn drop_relation(&mut self, relation: &str) {
        for slot in &mut self.slots {
            let matches = slot
                .entry
                .as_ref()
                .is_some_and(|e| e.key.relation == relation);
            if matches {
                let key = slot.entry.as_ref().expect("checked above").key.clone();
                self.by_key.remove(&key);
                slot.entry = None;
                slot.refs = 0;
            }
        }
    }

    /// An epoch-stamped, immutable view of every live entry.
    ///
    /// Snapshots are cheap (one `Arc` clone per live slot), `Send + Sync`, and
    /// probe lock-free through the same [`IndexId`]s the live registry hands
    /// out.  A snapshot keeps observing exactly the state it was taken at:
    /// later batches mutate the live registry copy-on-write, and later
    /// teardowns only drop the live reference.
    pub fn snapshot(&self, epoch: Epoch) -> IndexSnapshot {
        self.snapshots_taken.inc();
        IndexSnapshot {
            epoch,
            slots: self
                .slots
                .iter()
                .map(|s| {
                    s.entry
                        .as_ref()
                        .map(|entry| (s.generation, Arc::clone(entry)))
                })
                .collect(),
            _pin: PinGuard::new(Arc::clone(&self.live_pins)),
        }
    }

    /// Cumulative telemetry counters (all zero without the `telemetry`
    /// feature).
    pub fn telemetry(&self) -> IndexTelemetry {
        IndexTelemetry {
            inplace_writes: self.inplace_writes.get(),
            cow_clones: self.cow_clones.get(),
            snapshots_taken: self.snapshots_taken.get(),
            live_snapshot_pins: self.live_pins.get(),
        }
    }

    /// Number of live indexes.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.entry.is_some()).count()
    }

    /// `true` iff no index is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over the live indexes.
    pub fn iter(&self) -> impl Iterator<Item = &SharedIndex> {
        self.slots.iter().filter_map(|s| s.entry.as_deref())
    }

    /// Estimated heap footprint of all live indexes in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.iter().map(SharedIndex::approx_bytes).sum()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> IndexRegistryStats {
        let mut stats = IndexRegistryStats::default();
        for slot in &self.slots {
            let Some(entry) = slot.entry.as_deref() else {
                continue;
            };
            stats.indexes += 1;
            stats.indexed_rows += entry.indexed_rows();
            stats.total_refs += slot.refs;
            stats.bytes += entry.approx_bytes();
        }
        stats
    }
}

impl fmt::Debug for IndexRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "IndexRegistry[{} indexes, {} rows, {} refs]",
            stats.indexes, stats.indexed_rows, stats.total_refs
        )
    }
}

/// An immutable, epoch-stamped view of a registry's live indexes.
///
/// Taken with [`crate::SharedDatabase::index_snapshot`] (or
/// [`IndexRegistry::snapshot`]); probes resolve against the
/// entries exactly as they were at the snapshot's epoch, with no locking and no
/// coordination with concurrent writers — the registry's copy-on-write
/// maintenance guarantees a snapshotted entry is never mutated in place.  This
/// is the read primitive the planned async front-end serves queries from while
/// the update stream keeps committing.  Dictionary ids in snapshotted buckets
/// resolve through **any** dictionary state at or after the snapshot's epoch —
/// the dictionary is append-only, so ids never change meaning.
#[derive(Clone)]
pub struct IndexSnapshot {
    epoch: Epoch,
    /// Per registry slot: the generation and entry that were live at snapshot
    /// time (so the same stale-id discipline applies as on the live registry).
    slots: Vec<Option<(u64, Arc<SharedIndex>)>>,
    /// Keeps the owning registry's live-pin gauge accurate for as long as any
    /// clone of this snapshot is alive (held for `Drop` only).
    _pin: PinGuard,
}

/// RAII participant in the registry's live-snapshot-pin gauge: construction
/// and cloning increment it, dropping decrements it.
struct PinGuard {
    live: Arc<tele::Gauge>,
}

impl PinGuard {
    fn new(live: Arc<tele::Gauge>) -> Self {
        live.add(1);
        PinGuard { live }
    }
}

impl Clone for PinGuard {
    fn clone(&self) -> Self {
        PinGuard::new(Arc::clone(&self.live))
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.live.sub(1);
    }
}

impl IndexSnapshot {
    /// The store epoch this snapshot was taken at.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The snapshotted entry behind `id`, if it was live at snapshot time.
    pub fn get(&self, id: IndexId) -> Option<&SharedIndex> {
        self.slots
            .get(id.slot)
            .and_then(|s| s.as_ref())
            .filter(|(generation, _)| *generation == id.generation)
            .map(|(_, entry)| entry.as_ref())
    }

    /// Row blocks matching the key ids in the snapshotted index `id`, or an
    /// empty slice.  Lock-free and immune to concurrent store writes.
    pub fn probe_ids(&self, id: IndexId, key: &[u32]) -> &[u32] {
        self.get(id).map(|e| e.probe_ids(key)).unwrap_or(&[])
    }

    /// Number of indexes captured by this snapshot.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` iff the snapshot captured no index.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for IndexSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IndexSnapshot[epoch {}, {} indexes]",
            self.epoch,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::ValueDict;
    use crate::value::Value;

    /// Intern int rows into a fresh dict + sharded flat store.  With values
    /// inserted in first-occurrence order, `id(v) = dict.lookup(int v)`.
    fn flat(arity: usize, rows: &[&[i64]]) -> (ValueDict, ShardedRelationStore) {
        let mut dict = ValueDict::new();
        let mut store = ShardedRelationStore::new(arity);
        for row in rows {
            let ids: Vec<u32> = row.iter().map(|&v| dict.intern(&Value::int(v))).collect();
            store.insert_ids(&ids);
        }
        (dict, store)
    }

    fn ids(dict: &mut ValueDict, vals: &[i64]) -> Vec<u32> {
        vals.iter().map(|&v| dict.intern(&Value::int(v))).collect()
    }

    fn delta(dict: &mut ValueDict, arity: usize, ops: &[(&[i64], i64)]) -> IdDelta {
        let mut d = IdDelta::new(arity);
        for (vals, sign) in ops {
            d.push(&ids(dict, vals), *sign);
        }
        d
    }

    fn graph() -> (ValueDict, ShardedRelationStore) {
        flat(2, &[&[1, 2], &[1, 3], &[2, 3], &[3, 3]])
    }

    fn key_on(positions: &[usize]) -> IndexKey {
        IndexKey {
            relation: "Graph".into(),
            equalities: vec![],
            key_positions: positions.to_vec(),
        }
    }

    /// Blocks of `index` matching key values, as sorted `Vec<Vec<u32>>`.
    fn probe_rows(
        reg: &IndexRegistry,
        id: IndexId,
        dict: &mut ValueDict,
        key: &[i64],
    ) -> Vec<Vec<u32>> {
        let key_ids = ids(dict, key);
        let stride = reg.get(id).map(SharedIndex::stride).unwrap_or(1);
        let mut rows: Vec<Vec<u32>> = reg
            .probe_ids(id, &key_ids)
            .chunks_exact(stride)
            .map(<[u32]>::to_vec)
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn acquire_builds_and_probes() {
        let (mut dict, store) = graph();
        let mut reg = IndexRegistry::new();
        let id = reg.acquire(key_on(&[0]), &store, 0);
        assert_eq!(probe_rows(&reg, id, &mut dict, &[1]).len(), 2);
        assert_eq!(probe_rows(&reg, id, &mut dict, &[9]).len(), 0);
        let entry = reg.get(id).unwrap();
        assert_eq!(entry.indexed_rows(), 4);
        assert_eq!(entry.distinct_keys(), 3);
        assert_eq!(entry.arity(), 2);
        assert_eq!(entry.stride(), 2);
        assert_eq!(entry.epoch(), 0);
        assert!(entry.approx_bytes() > 0);
        assert!(format!("{reg:?}").contains("IndexRegistry"));
    }

    #[test]
    fn equalities_filter_indexed_rows() {
        let (mut dict, store) = graph();
        let mut reg = IndexRegistry::new();
        let key = IndexKey {
            relation: "Graph".into(),
            equalities: vec![(0, 1)],
            key_positions: vec![0],
        };
        let id = reg.acquire(key, &store, 0);
        // Only the self-loop (3, 3) passes src = dst.
        assert_eq!(reg.get(id).unwrap().indexed_rows(), 1);
        let three = ids(&mut dict, &[3, 3]);
        assert_eq!(probe_rows(&reg, id, &mut dict, &[3]), vec![three]);
        assert!(probe_rows(&reg, id, &mut dict, &[1]).is_empty());
    }

    #[test]
    fn refcounts_share_and_tear_down() {
        let (mut dict, store) = graph();
        let mut reg = IndexRegistry::new();
        let a = reg.acquire(key_on(&[0]), &store, 0);
        let b = reg.acquire(key_on(&[0]), &store, 0);
        assert_eq!(a, b, "same key shares one entry");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.refs_of(a), 2);
        let other = reg.acquire(key_on(&[1]), &store, 0);
        assert_ne!(a, other);
        assert_eq!(reg.len(), 2);

        reg.release(a);
        assert_eq!(reg.refs_of(a), 1);
        reg.release(b);
        assert!(reg.get(a).is_none(), "last release drops the entry");
        assert!(probe_rows(&reg, a, &mut dict, &[1]).is_empty());
        assert_eq!(reg.refs_of(a), 0);
        reg.release(a); // releasing a dead id is a no-op
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.stats().indexes, 1);

        // The freed slot is reused by the next distinct key — under a fresh
        // generation, so the stale id can neither probe nor release the new
        // tenant (no ABA through slot reuse).
        let again = reg.acquire(key_on(&[0, 1]), &store, 0);
        assert_ne!(again, a);
        assert!(reg.get(a).is_none());
        assert!(probe_rows(&reg, a, &mut dict, &[1, 2]).is_empty());
        reg.release(a); // stale-generation release must not touch `again`
        assert_eq!(reg.refs_of(again), 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn deltas_maintain_buckets_and_stamp_the_epoch() {
        let (mut dict, store) = graph();
        let mut reg = IndexRegistry::new();
        let id = reg.acquire(key_on(&[0]), &store, 0);
        let d = delta(&mut dict, 2, &[(&[1, 9], 1), (&[1, 2], -1), (&[4, 4], 1)]);
        reg.apply_relation_delta("Graph", &d, 1);
        // Unrelated relations are untouched.
        let other = delta(&mut dict, 2, &[(&[1, 1], 1)]);
        reg.apply_relation_delta("Other", &other, 2);
        let rows = probe_rows(&reg, id, &mut dict, &[1]);
        assert_eq!(rows.len(), 2);
        let one_nine = ids(&mut dict, &[1, 9]);
        let one_three = ids(&mut dict, &[1, 3]);
        assert!(rows.contains(&one_nine) && rows.contains(&one_three));
        let four_four = ids(&mut dict, &[4, 4]);
        assert_eq!(probe_rows(&reg, id, &mut dict, &[4]), vec![four_four]);
        assert_eq!(reg.get(id).unwrap().indexed_rows(), 5);
        assert_eq!(
            reg.get(id).unwrap().epoch(),
            1,
            "only the touching batch's epoch is stamped"
        );
        // Deleting the last row of a bucket removes the bucket.
        let del = delta(&mut dict, 2, &[(&[4, 4], -1)]);
        reg.apply_relation_delta("Graph", &del, 3);
        assert!(probe_rows(&reg, id, &mut dict, &[4]).is_empty());
        assert_eq!(reg.get(id).unwrap().epoch(), 3);
    }

    #[test]
    fn drop_relation_kills_its_indexes() {
        let (_dict, store) = graph();
        let mut reg = IndexRegistry::new();
        let g = reg.acquire(key_on(&[0]), &store, 0);
        let (_odict, ostore) = flat(1, &[&[1]]);
        let o = reg.acquire(
            IndexKey {
                relation: "Other".into(),
                equalities: vec![],
                key_positions: vec![0],
            },
            &ostore,
            0,
        );
        reg.drop_relation("Graph");
        assert!(reg.get(g).is_none());
        assert!(reg.get(o).is_some());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn snapshots_pin_their_epoch_under_later_writes() {
        let (mut dict, store) = graph();
        let mut reg = IndexRegistry::new();
        let id = reg.acquire(key_on(&[0]), &store, 0);
        let snap = reg.snapshot(0);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.len(), 1);
        assert!(!snap.is_empty());
        assert!(format!("{snap:?}").contains("epoch 0"));

        // The write after the snapshot copies the entry (copy-on-write): the
        // snapshot keeps reading epoch-0 contents, the live registry moves on.
        let d = delta(&mut dict, 2, &[(&[1, 2], -1), (&[7, 7], 1)]);
        reg.apply_relation_delta("Graph", &d, 1);
        let one = ids(&mut dict, &[1]);
        let seven = ids(&mut dict, &[7]);
        assert_eq!(snap.probe_ids(id, &one).len() / 2, 2, "snapshot is pinned");
        assert!(snap.probe_ids(id, &seven).is_empty());
        assert_eq!(snap.get(id).unwrap().epoch(), 0);
        assert_eq!(reg.probe_ids(id, &one).len() / 2, 1, "live registry moved");
        assert_eq!(
            reg.probe_ids(id, &seven),
            ids(&mut dict, &[7, 7]).as_slice()
        );
        assert_eq!(reg.get(id).unwrap().epoch(), 1);

        // Teardown of the live entry leaves the snapshot intact…
        reg.release(id);
        assert!(reg.get(id).is_none());
        assert_eq!(snap.probe_ids(id, &one).len() / 2, 2);
        // …and a slot reused under a new generation stays invisible to stale
        // ids on both the registry and any new snapshot.
        let next = reg.acquire(key_on(&[1]), &store, 2);
        let fresh = reg.snapshot(2);
        assert!(fresh.get(id).is_none(), "stale generation must not resolve");
        assert!(fresh.get(next).is_some());
        assert!(fresh.probe_ids(id, &one).is_empty());
    }

    #[test]
    fn unshared_entries_are_maintained_in_place_without_copies() {
        let (mut dict, store) = graph();
        let mut reg = IndexRegistry::new();
        let id = reg.acquire(key_on(&[0]), &store, 0);
        let before = reg.slots[id.slot].entry.as_ref().map(Arc::as_ptr).unwrap();
        let d = delta(&mut dict, 2, &[(&[9, 9], 1)]);
        reg.apply_relation_delta("Graph", &d, 1);
        let after = reg.slots[id.slot].entry.as_ref().map(Arc::as_ptr).unwrap();
        assert_eq!(before, after, "no snapshot outstanding → in-place update");

        // With a snapshot outstanding the same write relocates the entry.
        let snap = reg.snapshot(1);
        let d = delta(&mut dict, 2, &[(&[8, 8], 1)]);
        reg.apply_relation_delta("Graph", &d, 2);
        let moved = reg.slots[id.slot].entry.as_ref().map(Arc::as_ptr).unwrap();
        assert_ne!(after, moved, "snapshotted entry is copied before mutation");
        let eight = ids(&mut dict, &[8]);
        assert!(snap.probe_ids(id, &eight).is_empty());
        assert_eq!(
            reg.probe_ids(id, &eight),
            ids(&mut dict, &[8, 8]).as_slice()
        );
    }

    #[test]
    fn nullary_indexes_represent_presence() {
        let mut store = ShardedRelationStore::new(0);
        store.insert_ids(&[]);
        let mut reg = IndexRegistry::new();
        let key = IndexKey {
            relation: "Flag".into(),
            equalities: vec![],
            key_positions: vec![],
        };
        let id = reg.acquire(key, &store, 0);
        let entry = reg.get(id).unwrap();
        assert_eq!((entry.arity(), entry.stride()), (0, 1));
        assert_eq!(entry.indexed_rows(), 1);
        assert_eq!(reg.probe_ids(id, &[]).chunks_exact(1).count(), 1);
        // Deleting the single row empties the index.
        let mut del = IdDelta::new(0);
        del.push(&[], -1);
        reg.apply_relation_delta("Flag", &del, 1);
        assert!(reg.probe_ids(id, &[]).is_empty());
        assert_eq!(reg.get(id).unwrap().indexed_rows(), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_counts_cow_vs_inplace_and_pins() {
        let (mut dict, store) = graph();
        let mut reg = IndexRegistry::new();
        let _id = reg.acquire(key_on(&[0]), &store, 0);
        assert_eq!(reg.telemetry(), IndexTelemetry::default());

        // No snapshot outstanding: in-place.
        let d = delta(&mut dict, 2, &[(&[9, 9], 1)]);
        reg.apply_relation_delta("Graph", &d, 1);
        let t = reg.telemetry();
        assert_eq!((t.inplace_writes, t.cow_clones), (1, 0));

        // Snapshot outstanding: the first write copies; once the live entry is
        // unshared again, the next write is in place.
        let snap = reg.snapshot(1);
        assert_eq!(reg.telemetry().snapshots_taken, 1);
        assert_eq!(reg.telemetry().live_snapshot_pins, 1);
        let snap2 = snap.clone();
        assert_eq!(reg.telemetry().live_snapshot_pins, 2);
        let d = delta(&mut dict, 2, &[(&[8, 8], 1)]);
        reg.apply_relation_delta("Graph", &d, 2);
        let d = delta(&mut dict, 2, &[(&[7, 7], 1)]);
        reg.apply_relation_delta("Graph", &d, 3);
        let t = reg.telemetry();
        assert_eq!((t.inplace_writes, t.cow_clones), (2, 1));

        drop(snap);
        drop(snap2);
        assert_eq!(reg.telemetry().live_snapshot_pins, 0);
    }

    #[test]
    fn cloned_registry_has_independent_pin_gauge() {
        let (_dict, store) = graph();
        let mut reg = IndexRegistry::new();
        let _id = reg.acquire(key_on(&[0]), &store, 0);
        let _snap = reg.snapshot(0);
        let clone = reg.clone();
        assert_eq!(clone.telemetry().live_snapshot_pins, 0);
        assert_eq!(clone.len(), 1);
    }

    #[test]
    fn batch_parallel_maintenance_matches_sequential() {
        // The per-(index, shard) parallel commit must be bit-identical to
        // per-relation sequential maintenance: same probes, same row counts,
        // same epoch stamps, same COW/in-place telemetry.
        let (mut dict, store) = graph();
        let mut seq = IndexRegistry::new();
        let mut par = IndexRegistry::new();
        let ids_seq = [
            seq.acquire(key_on(&[0]), &store, 0),
            seq.acquire(key_on(&[1]), &store, 0),
            seq.acquire(key_on(&[0, 1]), &store, 0),
        ];
        let ids_par = [
            par.acquire(key_on(&[0]), &store, 0),
            par.acquire(key_on(&[1]), &store, 0),
            par.acquire(key_on(&[0, 1]), &store, 0),
        ];
        let mut d = IdDelta::new(2);
        for i in 0..40i64 {
            d.push(&ids(&mut dict, &[i, i * 7]), 1);
        }
        d.push(&ids(&mut dict, &[1, 2]), -1);
        d.push(&ids(&mut dict, &[3, 3]), -1);
        let deltas = vec![("Graph".to_string(), d.clone())];
        seq.apply_relation_delta("Graph", &d, 1);
        par.apply_batch_deltas(&deltas, 1, &WorkerPool::new(4));
        for (a, b) in ids_seq.iter().zip(ids_par.iter()) {
            let ea = seq.get(*a).unwrap();
            let eb = par.get(*b).unwrap();
            assert_eq!(ea.indexed_rows(), eb.indexed_rows());
            assert_eq!(ea.distinct_keys(), eb.distinct_keys());
            assert_eq!(ea.epoch(), eb.epoch());
            assert_eq!(eb.epoch(), 1);
        }
        for key in 0..45i64 {
            for (a, b) in ids_seq.iter().take(2).zip(ids_par.iter()) {
                assert_eq!(
                    probe_rows(&seq, *a, &mut dict, &[key]),
                    probe_rows(&par, *b, &mut dict, &[key]),
                );
            }
        }
        assert_eq!(seq.telemetry(), par.telemetry());
        // An untouched relation's delta leaves both registries alone.
        let silent = vec![("Other".to_string(), IdDelta::new(2))];
        par.apply_batch_deltas(&silent, 2, &WorkerPool::new(4));
        assert_eq!(par.get(ids_par[0]).unwrap().epoch(), 1);
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IndexSnapshot>();
        assert_send_sync::<IndexRegistry>();
        assert_send_sync::<SharedIndex>();
    }
}
