//! The shared index registry of a [`SharedDatabase`](crate::SharedDatabase).
//!
//! Delta-join maintenance (the counting engines of `dcq-incremental`) needs, per
//! atom occurrence, a hash index over a stored relation keyed by the occurrence's
//! join key.  When the views owned those indexes, `N` distinct-but-overlapping
//! views paid `N×` memory and `N×` index maintenance per batch for what is, per
//! distinct `(relation, equality signature, key columns)` triple, the **same**
//! structure.  The registry moves index ownership into the storage layer:
//!
//! * an index is identified by its [`IndexKey`] — the stored relation, the
//!   repeated-variable equality constraints of the atom (`(earlier, later)`
//!   stored-column pairs that must be equal), and the key column positions.  All
//!   three are expressed in **stored-column coordinates**, so α-renamed atoms of
//!   different queries that probe the same structure share one entry;
//! * entries are **refcounted**: [`IndexRegistry::acquire`] builds the index from
//!   the current relation contents on first use (`O(N)` once) and bumps a
//!   refcount afterwards, [`IndexRegistry::release`] drops the entry when its
//!   last user deregisters;
//! * maintenance happens **once per applied batch**, inside
//!   [`SharedDatabase::apply_batch`](crate::SharedDatabase::apply_batch): every
//!   registered index over a touched relation folds in the normalized delta,
//!   no matter how many views probe it.
//!
//! Buckets store **full stored rows** (equality-filtered).  Consumers project to
//! their atom's bound schema at probe time via precomputed positions, which is
//! what keeps one physical index reusable across differently-shaped atoms.

use crate::hash::{map_with_capacity, FastHashMap};
use crate::relation::Relation;
use crate::row::Row;
use crate::value::Value;
use std::fmt;

/// The identity of one shared index, in stored-column coordinates.
///
/// Two atoms (of any queries) that scan the same relation with the same
/// repeated-variable pattern and probe on the same columns map to the same key —
/// variable spellings never participate.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct IndexKey {
    /// Name of the indexed stored relation.
    pub relation: String,
    /// `(earlier, later)` stored positions that must be equal (the atom's
    /// repeated-variable filter); rows failing it are not indexed.
    pub equalities: Vec<(usize, usize)>,
    /// Stored positions forming the probe key, in canonical (first-occurrence)
    /// order.
    pub key_positions: Vec<usize>,
}

impl IndexKey {
    /// `true` iff `row` satisfies the equality constraints.
    pub fn admits(&self, row: &Row) -> bool {
        self.equalities
            .iter()
            .all(|&(a, b)| row.get(a) == row.get(b))
    }
}

impl fmt::Display for IndexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[key {:?}, eq {:?}]",
            self.relation, self.key_positions, self.equalities
        )
    }
}

/// A handle naming one acquired registry entry.
///
/// Handles stay valid from [`IndexRegistry::acquire`] until the matching
/// [`IndexRegistry::release`] drops the last reference; acquiring the same
/// [`IndexKey`] again returns an equal id.  A generation counter is stamped
/// into every handle, so a stale id whose slot was torn down (last release, or
/// [`IndexRegistry::drop_relation`]) and later reused by a different index can
/// neither probe nor release the slot's new tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IndexId {
    slot: usize,
    generation: u64,
}

/// One shared, refcounted hash index over a stored relation.
#[derive(Clone)]
pub struct SharedIndex {
    key: IndexKey,
    refs: usize,
    /// Key projection → equality-filtered stored rows.
    buckets: FastHashMap<Row, Vec<Row>>,
    /// Number of indexed rows (equality-filtered).
    rows: usize,
}

impl SharedIndex {
    fn build(key: IndexKey, relation: &Relation) -> Self {
        let mut buckets: FastHashMap<Row, Vec<Row>> = map_with_capacity(relation.len());
        let mut rows = 0;
        for row in relation.iter() {
            if key.admits(row) {
                buckets
                    .entry(row.project(&key.key_positions))
                    .or_default()
                    .push(row.clone());
                rows += 1;
            }
        }
        SharedIndex {
            key,
            refs: 1,
            buckets,
            rows,
        }
    }

    /// Fold one normalized stored-relation delta into the index.
    fn apply_delta(&mut self, delta: &[(Row, i64)]) {
        for (row, sign) in delta {
            if !self.key.admits(row) {
                continue;
            }
            let key = row.project(&self.key.key_positions);
            if *sign > 0 {
                self.buckets.entry(key).or_default().push(row.clone());
                self.rows += 1;
            } else if let Some(bucket) = self.buckets.get_mut(&key) {
                if let Some(pos) = bucket.iter().position(|r| r == row) {
                    bucket.swap_remove(pos);
                    self.rows -= 1;
                }
                if bucket.is_empty() {
                    self.buckets.remove(&key);
                }
            }
        }
    }

    /// The index identity.
    pub fn key(&self) -> &IndexKey {
        &self.key
    }

    /// Live references to this entry.
    pub fn refs(&self) -> usize {
        self.refs
    }

    /// Number of indexed (equality-filtered) rows.
    pub fn indexed_rows(&self) -> usize {
        self.rows
    }

    /// Number of distinct probe keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }

    /// Stored rows matching `key`, or an empty slice.
    pub fn probe(&self, key: &Row) -> &[Row] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Estimated heap footprint in bytes (buckets, keys and row clones).
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<SharedIndex>();
        bytes += self.buckets.capacity()
            * (std::mem::size_of::<Row>() + std::mem::size_of::<Vec<Row>>());
        for (key, bucket) in &self.buckets {
            bytes += key.arity() * std::mem::size_of::<Value>();
            bytes += bucket.capacity() * std::mem::size_of::<Row>();
            for row in bucket {
                bytes += row.arity() * std::mem::size_of::<Value>();
            }
        }
        bytes
    }
}

/// Point-in-time counters of a registry, surfaced through engine stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexRegistryStats {
    /// Live (acquired, not yet fully released) indexes.
    pub indexes: usize,
    /// Total indexed rows across all live indexes.
    pub indexed_rows: usize,
    /// Sum of live refcounts (how many acquisitions are outstanding).
    pub total_refs: usize,
    /// Estimated heap footprint of all live indexes in bytes.
    pub bytes: usize,
}

/// One registry slot: the live index (if any) plus the generation stamped into
/// the ids handed out for it, bumped on every allocation so stale ids of a
/// torn-down index cannot alias the slot's next tenant.
#[derive(Clone, Default)]
struct IndexSlot {
    generation: u64,
    entry: Option<SharedIndex>,
}

/// The refcounted collection of [`SharedIndex`]es a
/// [`SharedDatabase`](crate::SharedDatabase) maintains.
#[derive(Clone, Default)]
pub struct IndexRegistry {
    slots: Vec<IndexSlot>,
    by_key: FastHashMap<IndexKey, usize>,
}

impl IndexRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        IndexRegistry::default()
    }

    /// Find-or-build the index for `key`, bumping its refcount.
    ///
    /// `relation` must be the current contents of `key.relation`; a fresh entry is
    /// built from it in one `O(N)` pass, a live entry is reused as-is (it has been
    /// maintained under every applied batch since it was built).
    pub fn acquire(&mut self, key: IndexKey, relation: &Relation) -> IndexId {
        if let Some(&slot) = self.by_key.get(&key) {
            let state = &mut self.slots[slot];
            state
                .entry
                .as_mut()
                .expect("keyed index entry is live")
                .refs += 1;
            return IndexId {
                slot,
                generation: state.generation,
            };
        }
        let built = SharedIndex::build(key.clone(), relation);
        let slot = match self.slots.iter().position(|s| s.entry.is_none()) {
            Some(free) => free,
            None => {
                self.slots.push(IndexSlot::default());
                self.slots.len() - 1
            }
        };
        self.slots[slot].generation += 1;
        self.slots[slot].entry = Some(built);
        self.by_key.insert(key, slot);
        IndexId {
            slot,
            generation: self.slots[slot].generation,
        }
    }

    /// Drop one reference; the entry is torn down when the last holder releases.
    ///
    /// Releasing an id that is not live — already torn down, or whose slot has
    /// since been reused by a different index (stale generation) — is a no-op.
    pub fn release(&mut self, id: IndexId) {
        let Some(entry) = self
            .slots
            .get_mut(id.slot)
            .filter(|s| s.generation == id.generation)
            .and_then(|s| s.entry.as_mut())
        else {
            return;
        };
        entry.refs -= 1;
        if entry.refs == 0 {
            let key = entry.key.clone();
            self.by_key.remove(&key);
            self.slots[id.slot].entry = None;
        }
    }

    /// The live entry behind `id`, if any (stale generations resolve to `None`).
    pub fn get(&self, id: IndexId) -> Option<&SharedIndex> {
        self.slots
            .get(id.slot)
            .filter(|s| s.generation == id.generation)
            .and_then(|s| s.entry.as_ref())
    }

    /// Stored rows matching `key` in the index `id`, or an empty slice.
    ///
    /// An id that is no longer live probes empty — by construction consumers only
    /// probe ids they hold a reference on.
    pub fn probe(&self, id: IndexId, key: &Row) -> &[Row] {
        self.get(id).map(|e| e.probe(key)).unwrap_or(&[])
    }

    /// Fold one relation's normalized delta into every live index over it.
    pub fn apply_relation_delta(&mut self, relation: &str, delta: &[(Row, i64)]) {
        if delta.is_empty() {
            return;
        }
        for entry in self.slots.iter_mut().filter_map(|s| s.entry.as_mut()) {
            if entry.key.relation == relation {
                entry.apply_delta(delta);
            }
        }
    }

    /// Drop indexes over `relation` (the relation is being removed from the
    /// store).  Outstanding ids over it become dead: they probe empty, and the
    /// generation stamp keeps them dead even after their slot is reused.
    pub fn drop_relation(&mut self, relation: &str) {
        for slot in &mut self.slots {
            let matches = slot
                .entry
                .as_ref()
                .is_some_and(|e| e.key.relation == relation);
            if matches {
                let key = slot.entry.as_ref().expect("checked above").key.clone();
                self.by_key.remove(&key);
                slot.entry = None;
            }
        }
    }

    /// Number of live indexes.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.entry.is_some()).count()
    }

    /// `true` iff no index is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over the live indexes.
    pub fn iter(&self) -> impl Iterator<Item = &SharedIndex> {
        self.slots.iter().filter_map(|s| s.entry.as_ref())
    }

    /// Estimated heap footprint of all live indexes in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.iter().map(SharedIndex::approx_bytes).sum()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> IndexRegistryStats {
        let mut stats = IndexRegistryStats::default();
        for entry in self.iter() {
            stats.indexes += 1;
            stats.indexed_rows += entry.indexed_rows();
            stats.total_refs += entry.refs();
            stats.bytes += entry.approx_bytes();
        }
        stats
    }
}

impl fmt::Debug for IndexRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "IndexRegistry[{} indexes, {} rows, {} refs]",
            stats.indexes, stats.indexed_rows, stats.total_refs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    fn graph() -> Relation {
        Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![1, 3], vec![2, 3], vec![3, 3]],
        )
    }

    fn key_on(positions: &[usize]) -> IndexKey {
        IndexKey {
            relation: "Graph".into(),
            equalities: vec![],
            key_positions: positions.to_vec(),
        }
    }

    #[test]
    fn acquire_builds_and_probes() {
        let mut reg = IndexRegistry::new();
        let id = reg.acquire(key_on(&[0]), &graph());
        assert_eq!(reg.probe(id, &int_row([1])).len(), 2);
        assert_eq!(reg.probe(id, &int_row([9])).len(), 0);
        let entry = reg.get(id).unwrap();
        assert_eq!(entry.indexed_rows(), 4);
        assert_eq!(entry.distinct_keys(), 3);
        assert!(entry.approx_bytes() > 0);
        assert!(format!("{reg:?}").contains("IndexRegistry"));
    }

    #[test]
    fn equalities_filter_indexed_rows() {
        let mut reg = IndexRegistry::new();
        let key = IndexKey {
            relation: "Graph".into(),
            equalities: vec![(0, 1)],
            key_positions: vec![0],
        };
        let id = reg.acquire(key, &graph());
        // Only the self-loop (3, 3) passes src = dst.
        assert_eq!(reg.get(id).unwrap().indexed_rows(), 1);
        assert_eq!(reg.probe(id, &int_row([3])), &[int_row([3, 3])]);
        assert!(reg.probe(id, &int_row([1])).is_empty());
    }

    #[test]
    fn refcounts_share_and_tear_down() {
        let mut reg = IndexRegistry::new();
        let a = reg.acquire(key_on(&[0]), &graph());
        let b = reg.acquire(key_on(&[0]), &graph());
        assert_eq!(a, b, "same key shares one entry");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(a).unwrap().refs(), 2);
        let other = reg.acquire(key_on(&[1]), &graph());
        assert_ne!(a, other);
        assert_eq!(reg.len(), 2);

        reg.release(a);
        assert_eq!(reg.get(a).unwrap().refs(), 1);
        reg.release(b);
        assert!(reg.get(a).is_none(), "last release drops the entry");
        assert!(reg.probe(a, &int_row([1])).is_empty());
        reg.release(a); // releasing a dead id is a no-op
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.stats().indexes, 1);

        // The freed slot is reused by the next distinct key — under a fresh
        // generation, so the stale id can neither probe nor release the new
        // tenant (no ABA through slot reuse).
        let again = reg.acquire(key_on(&[0, 1]), &graph());
        assert_ne!(again, a);
        assert!(reg.get(a).is_none());
        assert!(reg.probe(a, &int_row([1, 2])).is_empty());
        reg.release(a); // stale-generation release must not touch `again`
        assert_eq!(reg.get(again).unwrap().refs(), 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn deltas_maintain_buckets() {
        let mut reg = IndexRegistry::new();
        let id = reg.acquire(key_on(&[0]), &graph());
        reg.apply_relation_delta(
            "Graph",
            &[
                (int_row([1, 9]), 1),
                (int_row([1, 2]), -1),
                (int_row([4, 4]), 1),
            ],
        );
        // Unrelated relations are untouched.
        reg.apply_relation_delta("Other", &[(int_row([1, 1]), 1)]);
        let rows = reg.probe(id, &int_row([1]));
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&int_row([1, 9])) && rows.contains(&int_row([1, 3])));
        assert_eq!(reg.probe(id, &int_row([4])), &[int_row([4, 4])]);
        assert_eq!(reg.get(id).unwrap().indexed_rows(), 5);
        // Deleting the last row of a bucket removes the bucket.
        reg.apply_relation_delta("Graph", &[(int_row([4, 4]), -1)]);
        assert!(reg.probe(id, &int_row([4])).is_empty());
    }

    #[test]
    fn drop_relation_kills_its_indexes() {
        let mut reg = IndexRegistry::new();
        let g = reg.acquire(key_on(&[0]), &graph());
        let other = Relation::from_int_rows("Other", &["k"], vec![vec![1]]);
        let o = reg.acquire(
            IndexKey {
                relation: "Other".into(),
                equalities: vec![],
                key_positions: vec![0],
            },
            &other,
        );
        reg.drop_relation("Graph");
        assert!(reg.get(g).is_none());
        assert!(reg.get(o).is_some());
        assert_eq!(reg.len(), 1);
    }
}
