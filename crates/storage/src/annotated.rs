//! Annotated relations.
//!
//! Section 5.3 of the paper extends DCQ evaluation to aggregations over *annotated
//! relations*: every tuple carries an annotation drawn from a commutative ring
//! `(S, ⊕, ⊗)`; joins multiply annotations, projections (GROUP BY) add them.
//! Section 5.4 uses the special case of bag semantics where the annotation is a
//! positive multiplicity.
//!
//! * [`Semiring`] — `0`, `1`, `⊕`, `⊗` (enough for joins/projections/bags),
//! * [`Ring`] — a semiring with additive inverse (needed for *numerical difference*),
//! * [`AnnotatedRelation<A>`] — schema + map from row to annotation,
//! * [`BagRelation`] — `AnnotatedRelation<u64>`, the bag-semantics instance.

use crate::hash::{map_with_capacity, FastHashMap};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::{Attr, Schema};
use crate::value::Value;
use crate::Result;
use crate::StorageError;
use std::fmt;

/// A commutative semiring `(S, ⊕, ⊗, 0, 1)`.
pub trait Semiring: Clone + PartialEq + fmt::Debug {
    /// The additive identity `0` (annotation of absent tuples).
    fn zero() -> Self;
    /// The multiplicative identity `1`.
    fn one() -> Self;
    /// Addition `⊕` (combines annotations of tuples projected onto the same result).
    fn plus(&self, other: &Self) -> Self;
    /// Multiplication `⊗` (combines annotations of joined tuples).
    fn times(&self, other: &Self) -> Self;
    /// `true` iff the value equals `0` — such tuples can be dropped.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

/// A commutative ring: a [`Semiring`] with additive inverses.
///
/// Needed by the *numerical difference* semantics of §5.3 where the result
/// annotation is `w₁(t) − w₂(t)` and may be negative.
pub trait Ring: Semiring {
    /// Additive inverse.
    fn neg(&self) -> Self;
    /// Subtraction `a ⊕ (−b)`.
    fn minus(&self, other: &Self) -> Self {
        self.plus(&other.neg())
    }
}

impl Semiring for i64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn plus(&self, other: &Self) -> Self {
        self + other
    }
    fn times(&self, other: &Self) -> Self {
        self * other
    }
}

impl Ring for i64 {
    fn neg(&self) -> Self {
        -self
    }
}

impl Semiring for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn plus(&self, other: &Self) -> Self {
        self + other
    }
    fn times(&self, other: &Self) -> Self {
        self * other
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

impl Ring for f64 {
    fn neg(&self) -> Self {
        -self
    }
}

/// Bag multiplicities: the counting semiring over `u64`.
impl Semiring for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn plus(&self, other: &Self) -> Self {
        self + other
    }
    fn times(&self, other: &Self) -> Self {
        self * other
    }
}

/// A relation whose tuples carry annotations from a semiring `A`.
///
/// Tuples with annotation `0` are never stored; inserting a duplicate row combines
/// the annotations with `⊕` (this is exactly the bag/aggregate semantics of §5).
#[derive(Clone)]
pub struct AnnotatedRelation<A: Semiring> {
    name: String,
    schema: Schema,
    entries: FastHashMap<Row, A>,
}

/// Bag-semantics relation: every distinct tuple annotated with its multiplicity.
pub type BagRelation = AnnotatedRelation<u64>;

impl<A: Semiring> AnnotatedRelation<A> {
    /// Create an empty annotated relation.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        AnnotatedRelation {
            name: name.into(),
            schema,
            entries: map_with_capacity(0),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the relation.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of distinct tuples with non-zero annotation.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the relation holds no tuple.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add `annotation` to the tuple's current annotation (⊕), verifying arity.
    pub fn insert(&mut self, row: Row, annotation: A) -> Result<()> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.schema.arity(),
                actual: row.arity(),
            });
        }
        self.combine(row, annotation);
        Ok(())
    }

    /// Add `annotation` to the tuple's current annotation (⊕) without arity checks.
    pub fn combine(&mut self, row: Row, annotation: A) {
        debug_assert_eq!(row.arity(), self.schema.arity());
        if annotation.is_zero() {
            return;
        }
        match self.entries.get_mut(&row) {
            Some(existing) => {
                let combined = existing.plus(&annotation);
                if combined.is_zero() {
                    self.entries.remove(&row);
                } else {
                    *existing = combined;
                }
            }
            None => {
                self.entries.insert(row, annotation);
            }
        }
    }

    /// Overwrite the tuple's annotation (no ⊕).
    pub fn set(&mut self, row: Row, annotation: A) {
        if annotation.is_zero() {
            self.entries.remove(&row);
        } else {
            self.entries.insert(row, annotation);
        }
    }

    /// The annotation of `row`, or `0` if absent (the paper's convention
    /// `w(t) = 0` for `t ∉ Q(D)`).
    pub fn annotation(&self, row: &Row) -> A {
        self.entries.get(row).cloned().unwrap_or_else(A::zero)
    }

    /// `true` iff `row` is present with a non-zero annotation.
    pub fn contains(&self, row: &Row) -> bool {
        self.entries.contains_key(row)
    }

    /// Iterate over `(row, annotation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, &A)> {
        self.entries.iter()
    }

    /// `(row, annotation)` pairs sorted by row — deterministic order for tests.
    pub fn sorted_entries(&self) -> Vec<(Row, A)> {
        let mut v: Vec<(Row, A)> = self
            .entries
            .iter()
            .map(|(r, a)| (r.clone(), a.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Forget the annotations: the set of tuples with non-zero annotation.
    pub fn to_relation(&self) -> Relation {
        let mut rel = Relation::new(self.name.clone(), self.schema.clone());
        rel.reserve(self.entries.len());
        for row in self.entries.keys() {
            rel.push_unchecked(row.clone());
        }
        rel.assume_distinct();
        rel
    }

    /// Annotated projection onto `attrs`: annotations of merged tuples are ⊕-combined.
    pub fn project(&self, attrs: &[Attr]) -> Result<AnnotatedRelation<A>> {
        let positions =
            self.schema
                .positions_of(attrs)
                .ok_or_else(|| StorageError::UnknownAttribute {
                    attr: attrs
                        .iter()
                        .find(|a| !self.schema.contains(a))
                        .map(|a| a.name().to_string())
                        .unwrap_or_default(),
                    schema: self.schema.clone(),
                })?;
        let mut out =
            AnnotatedRelation::new(format!("π({})", self.name), Schema::new(attrs.to_vec()));
        for (row, a) in &self.entries {
            out.combine(row.project(&positions), a.clone());
        }
        Ok(out)
    }

    /// Build from a plain relation, giving every *occurrence* annotation `1`
    /// (duplicates therefore accumulate: a row occurring `k` times gets `k·1`).
    pub fn from_relation(rel: &Relation) -> Self {
        let mut out = AnnotatedRelation::new(rel.name(), rel.schema().clone());
        for row in rel.iter() {
            out.combine(row.clone(), A::one());
        }
        out
    }
}

impl BagRelation {
    /// Create a bag relation of integer tuples with explicit multiplicities.
    pub fn from_int_rows_with_counts(
        name: impl Into<String>,
        attrs: &[&str],
        rows: impl IntoIterator<Item = (Vec<i64>, u64)>,
    ) -> Self {
        let schema = Schema::from_names(attrs.iter().copied());
        let mut rel = BagRelation::new(name, schema);
        for (r, c) in rows {
            rel.combine(r.into_iter().map(Value::Int).collect(), c);
        }
        rel
    }

    /// Total multiplicity (the bag's cardinality counting duplicates).
    pub fn total_multiplicity(&self) -> u64 {
        self.iter().map(|(_, c)| *c).sum()
    }
}

impl<A: Semiring> fmt::Debug for AnnotatedRelation<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}{} [{} tuples]", self.name, self.schema, self.len())?;
        for (row, a) in self.sorted_entries().iter().take(20) {
            writeln!(f, "  {row} ↦ {a:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    #[test]
    fn semiring_laws_for_i64() {
        let a = 3i64;
        let b = 5i64;
        let c = -2i64;
        assert_eq!(a.plus(&i64::zero()), a);
        assert_eq!(a.times(&i64::one()), a);
        assert_eq!(a.plus(&b), b.plus(&a));
        assert_eq!(a.times(&b), b.times(&a));
        assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
        assert_eq!(a.minus(&a), 0);
    }

    #[test]
    fn counting_semiring_u64() {
        assert_eq!(u64::zero(), 0);
        assert_eq!(u64::one(), 1);
        assert_eq!(4u64.plus(&5), 9);
        assert_eq!(4u64.times(&5), 20);
        assert!(0u64.is_zero());
    }

    #[test]
    fn insert_combines_annotations() {
        let mut r: AnnotatedRelation<i64> =
            AnnotatedRelation::new("R", Schema::from_names(["x", "y"]));
        r.insert(int_row([1, 2]), 3).unwrap();
        r.insert(int_row([1, 2]), 4).unwrap();
        r.insert(int_row([2, 2]), 1).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.annotation(&int_row([1, 2])), 7);
        assert_eq!(r.annotation(&int_row([9, 9])), 0);
    }

    #[test]
    fn zero_annotations_are_dropped() {
        let mut r: AnnotatedRelation<i64> = AnnotatedRelation::new("R", Schema::from_names(["x"]));
        r.combine(int_row([1]), 5);
        r.combine(int_row([1]), -5);
        assert!(r.is_empty());
        r.combine(int_row([2]), 0);
        assert!(!r.contains(&int_row([2])));
    }

    #[test]
    fn arity_checked_on_insert() {
        let mut r: AnnotatedRelation<i64> = AnnotatedRelation::new("R", Schema::from_names(["x"]));
        assert!(r.insert(int_row([1, 2]), 1).is_err());
    }

    #[test]
    fn annotated_projection_sums() {
        // Figure 3 flavour: project R1(x1,x2) with multiplicities onto x2.
        let r = BagRelation::from_int_rows_with_counts(
            "R1",
            &["x1", "x2"],
            vec![(vec![1, 10], 1), (vec![2, 10], 2), (vec![3, 20], 5)],
        );
        let p = r.project(&[Attr::new("x2")]).unwrap();
        assert_eq!(p.annotation(&int_row([10])), 3);
        assert_eq!(p.annotation(&int_row([20])), 5);
        assert_eq!(p.total_multiplicity(), 8);
    }

    #[test]
    fn from_relation_counts_duplicates() {
        let rel = Relation::from_int_rows("R", &["a"], vec![vec![1], vec![1], vec![2]]);
        let bag: BagRelation = AnnotatedRelation::from_relation(&rel);
        assert_eq!(bag.annotation(&int_row([1])), 2);
        assert_eq!(bag.annotation(&int_row([2])), 1);
        let back = bag.to_relation();
        assert_eq!(back.distinct_count(), 2);
    }

    #[test]
    fn set_overwrites() {
        let mut r: AnnotatedRelation<i64> = AnnotatedRelation::new("R", Schema::from_names(["x"]));
        r.set(int_row([1]), 5);
        r.set(int_row([1]), 2);
        assert_eq!(r.annotation(&int_row([1])), 2);
        r.set(int_row([1]), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn sorted_entries_are_deterministic() {
        let mut r: AnnotatedRelation<i64> = AnnotatedRelation::new("R", Schema::from_names(["x"]));
        for v in [5, 3, 9, 1] {
            r.combine(int_row([v]), 1);
        }
        let rows: Vec<i64> = r
            .sorted_entries()
            .iter()
            .map(|(row, _)| row.get(0).as_int().unwrap())
            .collect();
        assert_eq!(rows, vec![1, 3, 5, 9]);
    }
}
