//! Error types for the storage layer.

use crate::schema::Schema;
use std::fmt;

/// Errors raised by storage-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A row's arity did not match the relation schema it was inserted into.
    ArityMismatch {
        /// Name of the relation (if known).
        relation: String,
        /// Expected arity from the schema.
        expected: usize,
        /// Arity of the offending row.
        actual: usize,
    },
    /// Two relations were combined with incompatible schemas.
    SchemaMismatch {
        /// Schema of the left operand.
        left: Schema,
        /// Schema of the right operand.
        right: Schema,
        /// The operation that failed.
        operation: &'static str,
    },
    /// A named relation was not found in the database.
    UnknownRelation(String),
    /// A named attribute was not found in a schema.
    UnknownAttribute {
        /// The missing attribute's name.
        attr: String,
        /// The schema that was searched.
        schema: Schema,
    },
    /// A relation with the same name was registered twice.
    DuplicateRelation(String),
    /// An update log dropped old batches to honour its retention limit and can no
    /// longer be replayed in full.
    TruncatedLog {
        /// Batches still retained.
        retained: usize,
        /// Batches recorded over the log's lifetime.
        recorded: usize,
    },
    /// A truncated update log was replayed onto a snapshot taken at a different
    /// epoch than the log's base — the replay would skip or double-apply part
    /// of the update stream.
    LogEpochMismatch {
        /// Epoch of the snapshot the caller offered.
        snapshot: u64,
        /// The log's base epoch (the snapshot epoch it requires).
        base: u64,
    },
    /// An I/O failure while reading or writing a serialized artifact.  Carries
    /// the rendered [`std::io::Error`] (this enum is `Clone + Eq`, the source
    /// error is neither).
    Io(String),
    /// A serialized artifact failed structural validation: bad magic, a
    /// checksum mismatch, or truncated input.
    Corrupt {
        /// Which artifact was being read (`"checkpoint"`, `"update log"`, …).
        artifact: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// A serialized artifact was written by an unknown (newer) format version.
    UnsupportedVersion {
        /// Which artifact was being read.
        artifact: &'static str,
        /// The version byte found in the header.
        found: u8,
        /// The newest version this build understands.
        supported: u8,
    },
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch in relation `{relation}`: schema has {expected} attributes, row has {actual}"
            ),
            StorageError::SchemaMismatch {
                left,
                right,
                operation,
            } => write!(
                f,
                "schema mismatch in {operation}: left {left}, right {right}"
            ),
            StorageError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            StorageError::UnknownAttribute { attr, schema } => {
                write!(f, "attribute `{attr}` not found in schema {schema}")
            }
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` is already registered")
            }
            StorageError::TruncatedLog { retained, recorded } => write!(
                f,
                "update log was truncated ({retained} of {recorded} batches retained); full replay is impossible"
            ),
            StorageError::LogEpochMismatch { snapshot, base } => write!(
                f,
                "update log replays from epoch {base}, but the snapshot was taken at epoch {snapshot}"
            ),
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
            StorageError::Corrupt { artifact, detail } => {
                write!(f, "corrupt {artifact}: {detail}")
            }
            StorageError::UnsupportedVersion {
                artifact,
                found,
                supported,
            } => write!(
                f,
                "{artifact} written by format version {found}, but this build supports up to {supported}"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::ArityMismatch {
            relation: "Graph".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("Graph"));
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));

        let e = StorageError::UnknownRelation("Triple".into());
        assert!(e.to_string().contains("Triple"));

        let e = StorageError::UnknownAttribute {
            attr: "x9".into(),
            schema: Schema::from_names(["x1", "x2"]),
        };
        assert!(e.to_string().contains("x9"));
        assert!(e.to_string().contains("x1"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&StorageError::DuplicateRelation("R".into()));
    }
}
