//! Domain values.
//!
//! The paper treats every attribute domain abstractly (`dom(x)`); the experiments in
//! §6 use integer node identifiers (graph queries) and string/integer columns
//! (TPC-H/TPC-DS).  [`Value`] therefore supports 64-bit integers, cheaply clonable
//! interned strings, and an explicit null used only by outer operators.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// A single domain value stored in a tuple.
///
/// `Value` is totally ordered (ints < strings < null) so that relations can be
/// sorted deterministically, and hashable so hash joins / indexes work on any
/// attribute combination.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer (node ids, keys, counts, scale columns).
    Int(i64),
    /// Immutable string; `Arc` so cloning a tuple never re-allocates the bytes.
    Str(Arc<str>),
    /// Explicit null. Only produced by outer-join style operators and never by the
    /// conjunctive-query evaluators themselves.
    Null,
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct an integer value.
    pub const fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Return the integer payload, if this value is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Return the string payload, if this value is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `true` iff this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render the value the way the paper renders constants (`a1`, `17`, `NULL`).
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Str(s) => Cow::Borrowed(s),
            Value::Null => Cow::Borrowed("NULL"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_roundtrip() {
        let v = Value::int(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
        assert!(!v.is_null());
        assert_eq!(v.to_string(), "42");
    }

    #[test]
    fn str_roundtrip() {
        let v = Value::str("Brand#45");
        assert_eq!(v.as_str(), Some("Brand#45"));
        assert_eq!(v.as_int(), None);
        assert_eq!(v.to_string(), "Brand#45");
    }

    #[test]
    fn null_display_and_predicates() {
        let v = Value::Null;
        assert!(v.is_null());
        assert_eq!(v.to_string(), "NULL");
    }

    #[test]
    fn equality_distinguishes_variants() {
        assert_ne!(Value::int(1), Value::str("1"));
        assert_ne!(Value::Null, Value::int(0));
        assert_eq!(Value::str("a"), Value::str("a"));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vs = vec![
            Value::Null,
            Value::str("b"),
            Value::int(3),
            Value::int(-1),
            Value::str("a"),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::int(-1),
                Value::int(3),
                Value::str("a"),
                Value::str("b"),
                Value::Null
            ]
        );
    }

    #[test]
    fn hashing_consistent_with_equality() {
        assert_eq!(hash_of(&Value::str("xyz")), hash_of(&Value::str("xyz")));
        assert_eq!(hash_of(&Value::int(7)), hash_of(&Value::int(7)));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::int(5));
        assert_eq!(Value::from(5u32), Value::int(5));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("x")), Value::str("x"));
    }

    #[test]
    fn string_clone_is_cheap_and_shared() {
        let a = Value::str("shared-backing-storage");
        let b = a.clone();
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => panic!("expected strings"),
        }
    }
}
