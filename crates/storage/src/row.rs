//! Rows (tuples).
//!
//! A [`Row`] is a tuple of [`Value`]s laid out positionally according to the
//! [`Schema`](crate::Schema) of the relation that owns it.  Rows are the unit of
//! hashing in every join/difference operator, so the representation is a plain
//! boxed slice with derived `Hash`/`Eq`.

use crate::value::Value;
use std::fmt;

#[cfg(feature = "telemetry")]
static ROW_ALLOCATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[inline]
fn count_allocation() {
    #[cfg(feature = "telemetry")]
    ROW_ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Process-wide count of [`Row`] heap allocations (constructions and clones).
///
/// Only maintained with the `telemetry` feature (always `0` without it).  This
/// is the probe the flat-storage guard tests assert on: the delta-join hot
/// path must allocate rows proportional to the **delta**, never per probe.
pub fn row_allocations() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        ROW_ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        0
    }
}

/// A tuple of values.
#[derive(PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row {
    values: Box<[Value]>,
}

impl Clone for Row {
    fn clone(&self) -> Self {
        count_allocation();
        Row {
            values: self.values.clone(),
        }
    }
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        count_allocation();
        Row {
            values: values.into_boxed_slice(),
        }
    }

    /// The empty (nullary) row — the single tuple of a Boolean relation.
    pub fn empty() -> Self {
        Row {
            values: Box::new([]),
        }
    }

    /// Number of values in the row.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values, in positional order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Project the row onto the given positions (`π` at tuple granularity).
    pub fn project(&self, positions: &[usize]) -> Row {
        Row::new(positions.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenate this row with another (used when joining two tuples).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::new(values)
    }

    /// Concatenate this row with selected positions of another row.
    pub fn concat_projected(&self, other: &Row, positions: &[usize]) -> Row {
        let mut values = Vec::with_capacity(self.arity() + positions.len());
        values.extend_from_slice(&self.values);
        for &i in positions {
            values.push(other.values[i].clone());
        }
        Row::new(values)
    }

    /// Iterate over the values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

/// Build a row of integers — the common case for the graph workloads of §6.2.
pub fn int_row(values: impl IntoIterator<Item = i64>) -> Row {
    values.into_iter().map(Value::Int).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let r = int_row([1, 2, 3]);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(1), &Value::int(2));
        assert_eq!(r.values().len(), 3);
    }

    #[test]
    fn empty_row() {
        let r = Row::empty();
        assert_eq!(r.arity(), 0);
        assert_eq!(r, Row::new(vec![]));
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let r = int_row([10, 20, 30]);
        assert_eq!(r.project(&[2, 0]), int_row([30, 10]));
        assert_eq!(r.project(&[1, 1]), int_row([20, 20]));
        assert_eq!(r.project(&[]), Row::empty());
    }

    #[test]
    fn concat_and_concat_projected() {
        let a = int_row([1, 2]);
        let b = int_row([3, 4, 5]);
        assert_eq!(a.concat(&b), int_row([1, 2, 3, 4, 5]));
        assert_eq!(a.concat_projected(&b, &[2, 0]), int_row([1, 2, 5, 3]));
    }

    #[test]
    fn equality_and_hash_semantics() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(int_row([1, 2]));
        set.insert(int_row([1, 2]));
        set.insert(int_row([2, 1]));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", int_row([7, 8])), "(7, 8)");
        let r = Row::new(vec![Value::str("a"), Value::Null]);
        assert_eq!(format!("{r}"), "(a, NULL)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut rows = vec![int_row([2, 1]), int_row([1, 9]), int_row([1, 2])];
        rows.sort();
        assert_eq!(
            rows,
            vec![int_row([1, 2]), int_row([1, 9]), int_row([2, 1])]
        );
    }
}
