//! Signed tuple deltas: the update layer of the storage substrate.
//!
//! Incremental DCQ maintenance (the `dcq-incremental` crate) consumes database
//! updates as **batches of signed tuple deltas**: each operation is a `(row, ±1)`
//! pair against a named relation, `+1` for insertion and `−1` for deletion.  The
//! representation deliberately mirrors the ℤ-annotated relations of
//! [`crate::annotated`]: applying a delta is ⊕-combining multiplicities, and the
//! set-semantics stored relations are the special case where every live tuple has
//! multiplicity `1`.
//!
//! * [`DeltaBatch`] — one batch of raw signed operations, grouped per relation,
//! * [`normalize_delta`] — reduce a raw per-relation delta to its *net, set-semantics
//!   effect* against the current relation membership,
//! * [`Relation::apply_delta`] / [`Database::apply_batch`] — apply updates in place,
//! * [`UpdateLog`] — an append-only history of applied batches (replayable).

use crate::database::Database;
use crate::hash::{map_with_capacity, set_with_capacity, FastHashMap, FastHashSet};
use crate::relation::Relation;
use crate::row::Row;
use crate::shared::Epoch;
use crate::{Result, StorageError};
use std::collections::BTreeMap;
use std::fmt;

/// One batch of signed tuple operations, grouped by target relation.
///
/// Operations are kept *raw*: the same row may be inserted and deleted repeatedly
/// within a batch.  [`normalize_delta`] collapses a relation's operations to their
/// net set-semantics effect at application time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    ops: BTreeMap<String, Vec<(Row, i64)>>,
}

impl DeltaBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Record an insertion of `row` into `relation`.
    pub fn insert(&mut self, relation: impl Into<String>, row: Row) {
        self.push(relation, row, 1);
    }

    /// Record a deletion of `row` from `relation`.
    pub fn delete(&mut self, relation: impl Into<String>, row: Row) {
        self.push(relation, row, -1);
    }

    /// Record a signed operation (`sign > 0` insert, `sign < 0` delete, `0` ignored).
    pub fn push(&mut self, relation: impl Into<String>, row: Row, sign: i64) {
        if sign == 0 {
            return;
        }
        self.ops
            .entry(relation.into())
            .or_default()
            .push((row, sign.signum()));
    }

    /// `true` iff the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.values().all(|v| v.is_empty())
    }

    /// Total number of raw operations across all relations.
    pub fn len(&self) -> usize {
        self.ops.values().map(|v| v.len()).sum()
    }

    /// Names of the relations this batch touches, in sorted order.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.ops.keys().map(|s| s.as_str())
    }

    /// `true` iff the batch touches `relation`.
    pub fn touches(&self, relation: &str) -> bool {
        self.ops.get(relation).is_some_and(|v| !v.is_empty())
    }

    /// The raw operations against `relation` (empty slice if untouched).
    pub fn ops(&self, relation: &str) -> &[(Row, i64)] {
        self.ops.get(relation).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over `(relation, raw operations)` pairs in relation-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[(Row, i64)])> {
        self.ops.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Rough in-memory footprint of the batch in bytes, counting the op
    /// vectors, row storage, and string payloads.  Compaction policies use
    /// this (via [`UpdateLog::approx_bytes`]) to bound retained-log memory;
    /// it deliberately mirrors [`Relation::approx_bytes`]'s accounting.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        for (name, ops) in &self.ops {
            bytes += name.len() + std::mem::size_of::<(Row, i64)>() * ops.len();
            for (row, _) in ops {
                bytes += std::mem::size_of::<crate::value::Value>() * row.arity();
                for v in row.iter() {
                    if let Some(s) = v.as_str() {
                        bytes += s.len();
                    }
                }
            }
        }
        bytes
    }

    /// The sign-flipped batch: every insert becomes a delete of the same row
    /// and vice versa.  Applied right after `self`, it restores the previous
    /// set-semantics state exactly (benchmarks and tests use this to measure
    /// repeated full-sized batch applications without drifting the store).
    pub fn inverse(&self) -> DeltaBatch {
        let mut inverse = DeltaBatch::new();
        for (relation, ops) in self.iter() {
            for (row, sign) in ops {
                inverse.push(relation, row.clone(), -sign);
            }
        }
        inverse
    }
}

impl fmt::Display for DeltaBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeltaBatch[")?;
        for (i, (name, ops)) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let ins = ops.iter().filter(|(_, s)| *s > 0).count();
            write!(f, "{name}: +{ins}/−{}", ops.len() - ins)?;
        }
        write!(f, "]")
    }
}

/// Reduce a raw signed delta to its **net, set-semantics effect** against the current
/// membership of the relation.
///
/// Operations on the same row are summed; the result keeps `(row, +1)` only when the
/// net effect is an insertion of a row *not currently present*, and `(row, −1)` only
/// when it is a deletion of a row *currently present*.  Inserting an existing row or
/// deleting an absent one is a no-op, exactly as in a set-semantics store.
///
/// The membership set is taken as a parameter (rather than scanning the relation) so
/// maintenance engines that track live rows incrementally can normalize in
/// `O(|delta|)` time.
pub fn normalize_delta(current: &FastHashSet<Row>, raw: &[(Row, i64)]) -> Vec<(Row, i64)> {
    let mut net: FastHashMap<&Row, i64> = map_with_capacity(raw.len());
    for (row, sign) in raw {
        *net.entry(row).or_insert(0) += sign;
    }
    let mut out = Vec::with_capacity(net.len());
    for (row, n) in net {
        let present = current.contains(row);
        if n > 0 && !present {
            out.push((row.clone(), 1));
        } else if n < 0 && present {
            out.push((row.clone(), -1));
        }
    }
    out
}

/// Counts of tuples actually inserted / deleted by one delta application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaEffect {
    /// Rows newly inserted.
    pub inserted: usize,
    /// Rows removed.
    pub deleted: usize,
}

impl DeltaEffect {
    /// Total number of effective operations.
    pub fn total(&self) -> usize {
        self.inserted + self.deleted
    }

    /// Accumulate another effect into this one.
    pub fn absorb(&mut self, other: DeltaEffect) {
        self.inserted += other.inserted;
        self.deleted += other.deleted;
    }
}

impl Relation {
    /// Apply a raw signed delta under set semantics and report the net effect.
    ///
    /// The relation is deduplicated first (set semantics); the delta is normalized
    /// against its membership, so redundant operations are no-ops.  Rows must match
    /// the relation's arity.
    ///
    /// The first call on a cold relation pays `O(N)` to build the membership cache
    /// ([`Relation::cached_row_set`]); every later call normalizes and applies in
    /// `O(|delta|)`, which is what makes [`Database::apply_batch`] delta-sized on a
    /// steadily updated store.  Callers that already track membership themselves can
    /// still go through [`normalize_delta`] + [`Relation::apply_normalized_delta`]
    /// directly.
    pub fn apply_delta(&mut self, raw: &[(Row, i64)]) -> Result<DeltaEffect> {
        for (row, _) in raw {
            if row.arity() != self.schema().arity() {
                return Err(StorageError::ArityMismatch {
                    relation: self.name().to_string(),
                    expected: self.schema().arity(),
                    actual: row.arity(),
                });
            }
        }
        self.dedup();
        let delta = normalize_delta(self.cached_row_set(), raw);
        Ok(self.apply_normalized_delta(&delta))
    }

    /// Apply an already-normalized delta (the output of [`normalize_delta`] against
    /// this relation's current rows).  Skips re-deduplication and membership checks,
    /// and keeps the membership cache consistent, so incremental hot paths stay
    /// `O(N_deleted + |delta|)`.
    pub fn apply_normalized_delta(&mut self, delta: &[(Row, i64)]) -> DeltaEffect {
        let mut effect = DeltaEffect::default();
        // Maintain the membership cache by hand: `retain_rows` would drop it, but a
        // normalized delta states exactly which rows enter and leave.
        let mut cache = self.row_cache.take();
        let mut deletions: FastHashSet<&Row> = set_with_capacity(0);
        for (row, sign) in delta {
            if *sign < 0 {
                deletions.insert(row);
            }
        }
        if !deletions.is_empty() {
            let before = self.len();
            // `retain_rows` preserves the distinct flag.
            self.retain_rows(|r| !deletions.contains(r));
            effect.deleted = before - self.len();
            if let Some(cache) = cache.as_mut() {
                for row in &deletions {
                    cache.remove(*row);
                }
            }
        }
        let was_distinct = self.is_known_distinct();
        for (row, sign) in delta {
            if *sign > 0 {
                if let Some(cache) = cache.as_mut() {
                    cache.insert(row.clone());
                }
                self.push_unchecked(row.clone());
                effect.inserted += 1;
            }
        }
        if was_distinct {
            // A normalized delta only inserts rows that were absent, so distinctness
            // is preserved.
            self.assume_distinct();
        }
        self.row_cache = cache;
        effect
    }
}

/// Per-batch application summary for a whole database.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchEffect {
    /// Net effect summed over all touched relations.
    pub effect: DeltaEffect,
    /// Relations the batch touched (whether or not any tuple actually changed).
    pub relations_touched: Vec<String>,
}

impl Database {
    /// Apply a [`DeltaBatch`] to this database under set semantics.
    ///
    /// Every relation named by the batch must exist and every row must match its
    /// relation's arity — validated up front, so a rejected batch leaves the
    /// database untouched.  Each relation's operations are then normalized against
    /// its current contents before application.
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<BatchEffect> {
        for (name, raw) in batch.iter() {
            let rel = self.get(name)?;
            for (row, _) in raw {
                if row.arity() != rel.schema().arity() {
                    return Err(StorageError::ArityMismatch {
                        relation: name.to_string(),
                        expected: rel.schema().arity(),
                        actual: row.arity(),
                    });
                }
            }
        }
        let mut out = BatchEffect::default();
        for (name, raw) in batch.iter() {
            let rel = self.get_mut(name).expect("validated above");
            out.effect.absorb(rel.apply_delta(raw)?);
            out.relations_touched.push(name.to_string());
        }
        Ok(out)
    }
}

/// Append-only history of delta batches applied to a database.
///
/// The log is the replayable source of truth for an incremental maintenance engine:
/// a fresh snapshot plus `replay` reproduces the maintained state, which is how the
/// equivalence property tests validate [`DcqView`](https://docs.rs/dcq-incremental)
/// against full recomputation.
///
/// Long-lived consumers bound the log one of two ways: a retention *limit*
/// ([`UpdateLog::with_limit`] — the oldest batches fall off as new ones are
/// recorded) or explicit *compaction* ([`UpdateLog::truncate_before`] — an
/// engine checkpoints its store and drops the prefix the checkpoint subsumes).
/// Either way the log tracks its [`base epoch`](UpdateLog::base_epoch): the
/// epoch of the database state the oldest **retained** batch applies to.  A
/// truncated log refuses the epoch-0 [`UpdateLog::replay`] (a partial replay
/// from the original state would silently produce the wrong result) but stays
/// fully replayable from a snapshot at its base epoch via
/// [`UpdateLog::replay_onto`].  Counters keep accumulating across truncation.
#[derive(Clone, Debug, Default)]
pub struct UpdateLog {
    // Fields are `pub(crate)` so `crate::checkpoint` can (de)serialize the log
    // without widening the public API.
    pub(crate) batches: std::collections::VecDeque<DeltaBatch>,
    pub(crate) total: DeltaEffect,
    pub(crate) recorded: usize,
    pub(crate) limit: Option<usize>,
    pub(crate) truncated: bool,
    /// Epoch of the state *before* the oldest retained batch: batch `i` of
    /// [`UpdateLog::batches`] advances epoch `base_epoch + i` to
    /// `base_epoch + i + 1`.
    pub(crate) base_epoch: Epoch,
}

impl UpdateLog {
    /// Create an empty, unbounded log starting at epoch 0.
    pub fn new() -> Self {
        UpdateLog::default()
    }

    /// Create an empty log retaining at most `limit` batches.
    pub fn with_limit(limit: usize) -> Self {
        UpdateLog {
            limit: Some(limit.max(1)),
            ..UpdateLog::default()
        }
    }

    /// Append an applied batch together with its observed effect.
    pub fn record(&mut self, batch: DeltaBatch, effect: DeltaEffect) {
        self.total.absorb(effect);
        self.recorded += 1;
        self.batches.push_back(batch);
        if let Some(limit) = self.limit {
            while self.batches.len() > limit {
                self.batches.pop_front();
                self.truncated = true;
                self.base_epoch += 1;
            }
        }
    }

    /// The epoch of the database state the oldest retained batch applies to
    /// (`0` until the log is truncated or rebased).  Replaying the retained
    /// batches onto a snapshot taken at this epoch reproduces the state after
    /// the newest retained batch.
    pub fn base_epoch(&self) -> Epoch {
        self.base_epoch
    }

    /// Drop every retained batch that is already reflected in a database state
    /// at `epoch`, i.e. the batches advancing epochs up to and including
    /// `epoch`; returns how many were dropped.
    ///
    /// This is the compaction primitive: an engine that snapshots its store at
    /// `epoch` calls this to bound log memory while keeping the tail
    /// replayable ([`UpdateLog::replay_onto`] from that snapshot).  An `epoch`
    /// beyond the newest retained batch clears the log and rebases it at
    /// `epoch`; one at or below [`UpdateLog::base_epoch`] is a no-op.
    pub fn truncate_before(&mut self, epoch: Epoch) -> usize {
        let mut dropped = 0;
        while self.base_epoch < epoch && self.batches.pop_front().is_some() {
            dropped += 1;
            self.base_epoch += 1;
        }
        // Ran out of retained batches below the target (or the log was empty):
        // jump the base so later snapshot-and-replay pairs still line up.
        if self.base_epoch < epoch {
            self.base_epoch = epoch;
        }
        if dropped > 0 {
            self.truncated = true;
        }
        dropped
    }

    /// Rebase an **empty** log to start at `epoch` (no-op with batches
    /// retained): an engine installing a fresh log mid-stream records where in
    /// the epoch sequence the log begins, so [`UpdateLog::replay_onto`] pairs
    /// it with the right snapshot.  Returns `true` iff the rebase applied.
    pub fn rebase(&mut self, epoch: Epoch) -> bool {
        if !self.batches.is_empty() || self.base_epoch == epoch {
            return false;
        }
        self.base_epoch = epoch;
        true
    }

    /// Number of currently retained batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// `true` iff no batch is retained.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total number of batches ever recorded (including dropped ones).
    pub fn recorded(&self) -> usize {
        self.recorded
    }

    /// `true` iff old batches have been dropped to honour the retention limit.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The retained batches, oldest first.
    pub fn batches(&self) -> impl Iterator<Item = &DeltaBatch> {
        self.batches.iter()
    }

    /// Net tuples inserted / deleted across the whole log (including dropped
    /// batches).
    pub fn total_effect(&self) -> DeltaEffect {
        self.total
    }

    /// Rough in-memory footprint of the retained batches in bytes
    /// ([`DeltaBatch::approx_bytes`] summed).  `O(total retained ops)` — cheap
    /// relative to recording the batches, but engines on a hot path should
    /// track it incrementally rather than re-summing per batch.
    pub fn approx_bytes(&self) -> usize {
        self.batches.iter().map(DeltaBatch::approx_bytes).sum()
    }

    /// Re-apply every recorded batch, in order, to a database snapshot taken at
    /// epoch 0 (the original registration state).
    ///
    /// Fails with [`StorageError::TruncatedLog`] if batches have been dropped
    /// or the log was rebased — a partial replay from the original state would
    /// not reproduce the maintained one.  Use [`UpdateLog::replay_onto`] with a
    /// checkpoint at [`UpdateLog::base_epoch`] instead.
    pub fn replay(&self, db: &mut Database) -> Result<DeltaEffect> {
        if self.truncated {
            return Err(StorageError::TruncatedLog {
                retained: self.batches.len(),
                recorded: self.recorded,
            });
        }
        // Never truncated but rebased to a later start: nothing was lost, the
        // caller just needs a snapshot at the base epoch — say so instead of
        // reporting phantom data loss.
        if self.base_epoch != 0 {
            return Err(StorageError::LogEpochMismatch {
                snapshot: 0,
                base: self.base_epoch,
            });
        }
        self.replay_retained(db)
    }

    /// Re-apply the **retained** batches, in order, to a database snapshot
    /// taken at `snapshot_epoch` — which must equal [`UpdateLog::base_epoch`],
    /// or the replay would silently skip (or double-apply) a stretch of the
    /// update stream ([`StorageError::LogEpochMismatch`]).
    ///
    /// This is the recovery half of log compaction: `checkpoint the store at
    /// epoch e` + `truncate_before(e)` keeps `checkpoint ⊕ replay_onto(·, e) =
    /// current state` as an invariant while bounding log memory.
    pub fn replay_onto(&self, db: &mut Database, snapshot_epoch: Epoch) -> Result<DeltaEffect> {
        if snapshot_epoch != self.base_epoch {
            return Err(StorageError::LogEpochMismatch {
                snapshot: snapshot_epoch,
                base: self.base_epoch,
            });
        }
        self.replay_retained(db)
    }

    fn replay_retained(&self, db: &mut Database) -> Result<DeltaEffect> {
        let mut effect = DeltaEffect::default();
        for batch in &self.batches {
            effect.absorb(db.apply_batch(batch)?.effect);
        }
        Ok(effect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    fn graph() -> Relation {
        Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 1]],
        )
    }

    #[test]
    fn batch_builder_and_accessors() {
        let mut b = DeltaBatch::new();
        assert!(b.is_empty());
        b.insert("Graph", int_row([7, 8]));
        b.delete("Graph", int_row([1, 2]));
        b.insert("Edge", int_row([1, 1]));
        b.push("Edge", int_row([2, 2]), 0); // ignored
        assert_eq!(b.len(), 3);
        assert!(b.touches("Graph") && b.touches("Edge") && !b.touches("Node"));
        assert_eq!(b.relations().collect::<Vec<_>>(), vec!["Edge", "Graph"]);
        assert_eq!(b.ops("Graph").len(), 2);
        assert_eq!(b.ops("Missing"), &[]);
        let text = format!("{b}");
        assert!(text.contains("Graph: +1"));
    }

    #[test]
    fn inverse_flips_signs_and_round_trips() {
        let mut b = DeltaBatch::new();
        b.insert("Graph", int_row([7, 8]));
        b.delete("Graph", int_row([1, 2]));
        b.insert("Edge", int_row([1, 1]));
        let inv = b.inverse();
        assert_eq!(inv.len(), b.len());
        assert_eq!(
            inv.ops("Graph"),
            &[(int_row([7, 8]), -1), (int_row([1, 2]), 1)]
        );
        assert_eq!(inv.ops("Edge"), &[(int_row([1, 1]), -1)]);
        // Applying batch then inverse restores the relation exactly.
        let mut g = graph();
        let before = g.sorted_rows();
        g.apply_delta(b.ops("Graph")).unwrap();
        assert_ne!(g.sorted_rows(), before);
        g.apply_delta(inv.ops("Graph")).unwrap();
        assert_eq!(g.sorted_rows(), before);
    }

    #[test]
    fn normalization_collapses_and_clips() {
        let current: FastHashSet<Row> = [int_row([1, 2]), int_row([2, 3])].into_iter().collect();
        let raw = vec![
            (int_row([1, 2]), 1),  // already present → no-op
            (int_row([9, 9]), 1),  // new → +1
            (int_row([2, 3]), -1), // present → −1
            (int_row([5, 5]), -1), // absent → no-op
            (int_row([7, 7]), 1),  // insert then delete → net 0
            (int_row([7, 7]), -1),
        ];
        let mut net = normalize_delta(&current, &raw);
        net.sort();
        assert_eq!(net, vec![(int_row([2, 3]), -1), (int_row([9, 9]), 1)]);
    }

    #[test]
    fn relation_apply_delta_is_set_semantics() {
        let mut g = graph();
        let effect = g
            .apply_delta(&[
                (int_row([1, 2]), 1),  // duplicate insert: no-op
                (int_row([9, 9]), 1),  // new row
                (int_row([2, 3]), -1), // delete existing
                (int_row([8, 8]), -1), // delete absent: no-op
            ])
            .unwrap();
        assert_eq!(
            effect,
            DeltaEffect {
                inserted: 1,
                deleted: 1
            }
        );
        assert_eq!(effect.total(), 2);
        assert_eq!(
            g.sorted_rows(),
            vec![int_row([1, 2]), int_row([3, 1]), int_row([9, 9])]
        );
        assert!(g.is_known_distinct());
    }

    #[test]
    fn repeated_deltas_reuse_the_membership_cache() {
        let mut g = graph();
        assert!(!g.row_cache_is_warm());
        g.apply_delta(&[(int_row([9, 9]), 1)]).unwrap();
        // The first application warms the cache; later ones are O(|delta|).
        assert!(g.row_cache_is_warm());
        for step in 0..10i64 {
            let effect = g
                .apply_delta(&[(int_row([20 + step, step]), 1), (int_row([9, 9]), 1)])
                .unwrap();
            assert_eq!(effect.inserted, 1, "duplicate insert must normalize away");
            assert!(g.row_cache_is_warm());
        }
        assert_eq!(g.to_row_set(), {
            let mut fresh = g.clone();
            fresh.retain_rows(|_| true); // drops the cache
            assert!(!fresh.row_cache_is_warm());
            fresh.to_row_set() // rebuilt from rows: must agree with the cache
        });
    }

    #[test]
    fn relation_apply_delta_checks_arity() {
        let mut g = graph();
        assert!(matches!(
            g.apply_delta(&[(int_row([1, 2, 3]), 1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn database_apply_batch_and_unknown_relation() {
        let mut db = Database::new();
        db.add(graph()).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([4, 4]));
        batch.delete("Graph", int_row([1, 2]));
        let effect = db.apply_batch(&batch).unwrap();
        assert_eq!(
            effect.effect,
            DeltaEffect {
                inserted: 1,
                deleted: 1
            }
        );
        assert_eq!(effect.relations_touched, vec!["Graph".to_string()]);
        assert_eq!(db.get("Graph").unwrap().len(), 3);

        let mut bad = DeltaBatch::new();
        bad.insert("Nope", int_row([1]));
        assert!(db.apply_batch(&bad).is_err());
    }

    #[test]
    fn update_log_replays_to_same_state() {
        let mut db = Database::new();
        db.add(graph()).unwrap();
        let snapshot = db.clone();

        let mut log = UpdateLog::new();
        assert!(log.is_empty());
        for step in 0..5i64 {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([10 + step, step]));
            batch.delete("Graph", int_row([1, 2]));
            let effect = db.apply_batch(&batch).unwrap().effect;
            log.record(batch, effect);
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.batches().count(), 5);
        assert_eq!(log.recorded(), 5);
        assert!(!log.is_truncated());
        // Deleting (1,2) succeeds only the first time.
        assert_eq!(
            log.total_effect(),
            DeltaEffect {
                inserted: 5,
                deleted: 1
            }
        );

        let mut replayed = snapshot;
        let effect = log.replay(&mut replayed).unwrap();
        assert_eq!(effect, log.total_effect());
        assert_eq!(
            replayed.get("Graph").unwrap().sorted_rows(),
            db.get("Graph").unwrap().sorted_rows()
        );
    }

    #[test]
    fn truncate_before_keeps_the_tail_replayable_from_the_checkpoint() {
        let mut db = Database::new();
        db.add(graph()).unwrap();
        let mut log = UpdateLog::new();
        assert_eq!(log.base_epoch(), 0);

        // Epochs 1..=6: apply six batches, checkpointing the state at epoch 4.
        let mut checkpoint: Option<Database> = None;
        for step in 0..6i64 {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([30 + step, step]));
            if step % 2 == 0 {
                batch.delete("Graph", int_row([30 + step - 2, step - 2]));
            }
            let effect = db.apply_batch(&batch).unwrap().effect;
            log.record(batch, effect);
            if step == 3 {
                checkpoint = Some(db.clone());
            }
        }
        let checkpoint = checkpoint.unwrap();

        // Compact everything the epoch-4 checkpoint already reflects.
        assert_eq!(log.truncate_before(4), 4);
        assert_eq!(log.base_epoch(), 4);
        assert_eq!(log.len(), 2);
        assert_eq!(log.recorded(), 6);
        assert!(log.is_truncated());

        // Replayability from the truncation point is preserved exactly:
        // checkpoint ⊕ retained tail = current state.
        let mut rebuilt = checkpoint.clone();
        log.replay_onto(&mut rebuilt, 4).unwrap();
        assert_eq!(
            rebuilt.get("Graph").unwrap().sorted_rows(),
            db.get("Graph").unwrap().sorted_rows()
        );

        // The epoch-0 replay and mismatched snapshots are refused.
        let mut from_scratch = Database::new();
        from_scratch.add(graph()).unwrap();
        assert!(matches!(
            log.replay(&mut from_scratch),
            Err(StorageError::TruncatedLog { .. })
        ));
        assert!(matches!(
            log.replay_onto(&mut checkpoint.clone(), 3),
            Err(StorageError::LogEpochMismatch {
                snapshot: 3,
                base: 4
            })
        ));

        // Truncating at or below the base is a no-op; truncating past the
        // newest retained batch clears the log and rebases it there.
        assert_eq!(log.truncate_before(4), 0);
        assert_eq!(log.truncate_before(9), 2);
        assert!(log.is_empty());
        assert_eq!(log.base_epoch(), 9);
        let mut at_nine = db.clone();
        assert_eq!(
            log.replay_onto(&mut at_nine, 9).unwrap(),
            DeltaEffect::default()
        );
    }

    #[test]
    fn rebase_applies_only_to_empty_logs() {
        let mut log = UpdateLog::new();
        assert!(log.rebase(7));
        assert_eq!(log.base_epoch(), 7);
        assert!(!log.rebase(7), "same epoch is a no-op");
        // A rebased-but-complete log refuses the epoch-0 replay with the
        // epoch-mismatch error (nothing was truncated — no phantom data loss).
        let mut db = Database::new();
        db.add(graph()).unwrap();
        assert!(matches!(
            log.replay(&mut db),
            Err(StorageError::LogEpochMismatch {
                snapshot: 0,
                base: 7
            })
        ));
        assert_eq!(log.replay_onto(&mut db, 7).unwrap(), DeltaEffect::default());
        log.record(DeltaBatch::new(), DeltaEffect::default());
        assert!(!log.rebase(9), "non-empty logs cannot be rebased");
        assert_eq!(log.base_epoch(), 7);
    }

    #[test]
    fn bounded_log_truncates_and_refuses_replay() {
        let mut db = Database::new();
        db.add(graph()).unwrap();
        let mut log = UpdateLog::with_limit(3);
        for step in 0..5i64 {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([20 + step, step]));
            let effect = db.apply_batch(&batch).unwrap().effect;
            log.record(batch, effect);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded(), 5);
        assert!(log.is_truncated());
        assert_eq!(
            log.base_epoch(),
            2,
            "two limit-dropped batches moved the base"
        );
        assert_eq!(log.total_effect().inserted, 5);
        let mut snapshot = Database::new();
        snapshot.add(graph()).unwrap();
        assert!(matches!(
            log.replay(&mut snapshot),
            Err(StorageError::TruncatedLog {
                retained: 3,
                recorded: 5
            })
        ));
    }
}
