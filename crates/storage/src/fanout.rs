//! The workspace's worker-pool abstraction: per-view fan-out in the engine,
//! per-shard commit in [`SharedDatabase::apply_batch`](crate::SharedDatabase::apply_batch),
//! and per-partition counting folds in the incremental layer all schedule on
//! this one seam.
//!
//! [`WorkerPool::run`] maps a function over a task list, preserving input
//! order in the results.  With the `parallel` feature and more than one
//! configured worker, tasks are executed on scoped OS threads pulling from
//! a shared atomic cursor — classic self-scheduling, so a mix of cheap
//! (skipped) and expensive tasks balances itself without any splitting
//! heuristic.  With the feature disabled, or one worker, or one task, the map
//! runs inline on the caller's thread with zero overhead.
//!
//! The surface is deliberately rayon-shaped: `run(tasks, f)` is
//! `tasks.into_par_iter().enumerate().map(f).collect()` — when the workspace
//! gains network access, a `rayon` backend is one cfg'd method body (replace
//! the scoped-thread block with `rayon::scope` / `par_iter`), with no caller
//! changes.  Scoped `std` threads are used today because the build environment
//! vendors no external crates; for the workloads scheduled here — per-view
//! maintenance, per-shard commit and per-partition folds costing tens of
//! microseconds to tens of milliseconds — the ~10 µs per-run spawn cost is
//! noise.
//!
//! Panics in a worker propagate to the caller when the scope joins (after all
//! workers finish), matching inline behavior closely enough for an engine
//! whose tasks are not supposed to panic.

#[cfg(feature = "parallel")]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(feature = "parallel")]
use std::sync::Mutex;

/// A fixed-width pool of fan-out workers.
///
/// The pool holds no threads between calls — workers are scoped to each
/// [`WorkerPool::run`] — so it is plain data: cheap to embed in an engine,
/// trivially `Send + Sync`, and reconfigurable at any time.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool running `workers` tasks concurrently (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// The default width: the `DCQ_WORKERS` environment variable when set to a
    /// positive integer (the CI lever for forcing multi-worker scheduling on
    /// single-core runners), else every hardware thread with the `parallel`
    /// feature on, else `1` (strictly inline execution).
    pub fn default_workers() -> usize {
        if let Ok(forced) = std::env::var("DCQ_WORKERS") {
            if let Ok(n) = forced.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        if cfg!(feature = "parallel") {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            1
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `tasks`, returning the results **in input order**.
    ///
    /// `f` runs once per task (exactly-once, whatever the thread layout) and
    /// receives the task's input index, so callers can carry slot identity
    /// through the pool without threading it into the task type.
    pub fn run<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        #[cfg(feature = "parallel")]
        {
            let workers = self.workers.min(tasks.len());
            if workers > 1 {
                return run_scoped(workers, tasks, &f);
            }
        }
        tasks
            .into_iter()
            .enumerate()
            .map(|(index, task)| f(index, task))
            .collect()
    }
}

/// Self-scheduling execution on `workers` scoped threads: each worker claims
/// the next unstarted task off an atomic cursor until none remain.
#[cfg(feature = "parallel")]
fn run_scoped<T, R, F>(workers: usize, tasks: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = tasks.len();
    // Tasks move out through, and results move back through, per-slot mutexes:
    // each slot is touched by exactly one worker, so the locks never contend —
    // they only launder the cross-thread handoff safely without `unsafe`.
    let task_slots: Vec<Mutex<Option<T>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let task = task_slots[index]
                    .lock()
                    .expect("task slot lock")
                    .take()
                    .expect("each task is claimed exactly once");
                let result = f(index, task);
                *result_slots[index].lock().expect("result slot lock") = Some(result);
            });
        }
    });
    result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding a result slot")
                .expect("every claimed task produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        for workers in [1, 2, 4, 9] {
            let pool = WorkerPool::new(workers);
            assert_eq!(pool.workers(), workers);
            let tasks: Vec<u64> = (0..23).collect();
            let out = pool.run(tasks, |index, task| {
                assert_eq!(index as u64, task);
                task * 10
            });
            assert_eq!(out, (0..23).map(|t| t * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_workers_clamp_to_one_and_empty_input_is_fine() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let out: Vec<u64> = pool.run(Vec::<u64>::new(), |_, t| t);
        assert!(out.is_empty());
        assert!(WorkerPool::default_workers() >= 1);
    }

    #[test]
    fn mutable_borrows_flow_through_tasks() {
        // The pool takes no `'static` bound: scoped threads let tasks carry
        // `&mut` borrows, which is what the sharded commit path relies on.
        let mut shards = [0u64; 4];
        let tasks: Vec<&mut u64> = shards.iter_mut().collect();
        let pool = WorkerPool::new(4);
        pool.run(tasks, |index, slot| *slot = index as u64 + 1);
        assert_eq!(shards, [1, 2, 3, 4]);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn tasks_actually_fan_out_across_threads() {
        use std::sync::Mutex;
        // With workers > tasks is fine too; record which threads ran tasks.
        let pool = WorkerPool::new(4);
        let seen: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        let out = pool.run((0..64).collect::<Vec<u64>>(), |_, task| {
            let id = std::thread::current().id();
            let mut seen = seen.lock().unwrap();
            if !seen.contains(&id) {
                seen.push(id);
            }
            task
        });
        assert_eq!(out.len(), 64);
        let caller = std::thread::current().id();
        assert!(
            !seen.lock().unwrap().contains(&caller),
            "parallel path must not run tasks inline"
        );
    }
}
