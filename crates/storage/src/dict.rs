//! The value dictionary: every [`Value`] interned to a dense `u32` id.
//!
//! The flat storage layer never hashes or clones a [`Value`] on the hot path:
//! a per-[`SharedDatabase`](crate::SharedDatabase) [`ValueDict`] assigns each
//! distinct value a dense id at commit time (once per distinct value per
//! batch), and every downstream structure — flat relation buffers, index
//! buckets, support counts — works in id space.  Because interning is
//! injective, id equality *is* value equality, so joins, equality filters and
//! membership tests all reduce to `u32` compares.
//!
//! Ids are **arrival-ordered**, not value-ordered: `cmp_ids` resolves through
//! the dictionary when a total order over values is needed (sorted output,
//! deterministic rendering).  The id space is append-only — values are never
//! forgotten, so an id, once handed out, stays valid for the store's lifetime.
//!
//! ## Snapshot semantics
//!
//! Values live in fixed-size chunks behind `Arc`s.  [`ValueDict::snapshot`]
//! clones the chunk handles (cheap, no value copies): the snapshot resolves
//! every id that existed at snapshot time, forever, while the live dictionary
//! keeps growing.  Writes go through [`Arc::make_mut`] on the tail chunk —
//! exactly the registry's copy-on-write discipline — so a snapshot is never
//! mutated underneath its reader and the steady state without outstanding
//! snapshots pays zero copies.  Full chunks are immutable by construction.

use crate::hash::FastHashMap;
use crate::tele;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Values per dictionary chunk.  A power of two so id → (chunk, offset)
/// splits into a shift and a mask.
const CHUNK: usize = 1024;

/// An interning dictionary from [`Value`]s to dense `u32` ids.
#[derive(Clone, Default)]
pub struct ValueDict {
    /// Id-ordered storage; every chunk but the last holds exactly [`CHUNK`]
    /// values.  `Arc` per chunk so snapshots share full chunks forever and
    /// copy-on-write applies only to the partially-filled tail.
    chunks: Vec<Arc<Vec<Value>>>,
    /// Total interned values (the next id to assign).
    len: u32,
    /// Reverse map for interning and non-mutating lookups.
    by_value: FastHashMap<Value, u32>,
    /// Interning telemetry (no-ops without the `telemetry` feature).
    hits: tele::Counter,
    misses: tele::Counter,
}

/// Point-in-time dictionary counters, surfaced through engine metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DictStats {
    /// Distinct values interned.
    pub entries: u64,
    /// Estimated heap footprint of the dictionary, bytes.
    pub bytes: u64,
    /// Intern calls that found the value already present (cumulative; zero
    /// without the `telemetry` feature).
    pub intern_hits: u64,
    /// Intern calls that assigned a fresh id (cumulative; zero without the
    /// `telemetry` feature).
    pub intern_misses: u64,
}

impl ValueDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        ValueDict::default()
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Intern `value`, returning its dense id (existing or freshly assigned).
    ///
    /// # Panics
    /// Panics if the dictionary is full (`u32::MAX` distinct values).
    pub fn intern(&mut self, value: &Value) -> u32 {
        if let Some(&id) = self.by_value.get(value) {
            self.hits.inc();
            return id;
        }
        self.misses.inc();
        let id = self.len;
        assert!(id != u32::MAX, "value dictionary is full");
        if self.chunks.last().is_none_or(|c| c.len() == CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(CHUNK)));
        }
        let tail = self.chunks.last_mut().expect("tail chunk exists");
        // Copy-on-write: clones the tail chunk only when an outstanding
        // snapshot still references it; the steady state appends in place.
        Arc::make_mut(tail).push(value.clone());
        self.by_value.insert(value.clone(), id);
        self.len = id + 1;
        id
    }

    /// The id of `value` if it has been interned — non-mutating, for readers
    /// translating probe keys.  A value the store has never seen has no id
    /// (and therefore matches nothing).
    pub fn lookup(&self, value: &Value) -> Option<u32> {
        self.by_value.get(value).copied()
    }

    /// The value behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was never assigned.
    pub fn resolve(&self, id: u32) -> &Value {
        &self.chunks[id as usize / CHUNK][id as usize % CHUNK]
    }

    /// Compare two ids by the **values** they intern (ids themselves are
    /// arrival-ordered and carry no value order).
    pub fn cmp_ids(&self, a: u32, b: u32) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.resolve(a).cmp(self.resolve(b))
    }

    /// An immutable snapshot resolving every id assigned so far.
    pub fn snapshot(&self) -> DictSnapshot {
        DictSnapshot {
            len: self.len,
            chunks: self.chunks.clone(),
        }
    }

    /// Estimated heap footprint in bytes (chunk storage, string payloads, and
    /// the reverse map).
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<ValueDict>();
        for chunk in &self.chunks {
            bytes += chunk.capacity() * std::mem::size_of::<Value>();
        }
        for value in self.by_value.keys() {
            if let Value::Str(s) = value {
                // Stored once: chunk and map share the `Arc<str>` backing.
                bytes += s.len();
            }
        }
        bytes +=
            self.by_value.capacity() * (std::mem::size_of::<Value>() + std::mem::size_of::<u32>());
        bytes
    }

    /// Point-in-time counters (intern hit/miss are cumulative and zero
    /// without the `telemetry` feature).
    pub fn stats(&self) -> DictStats {
        DictStats {
            entries: self.len as u64,
            bytes: self.approx_bytes() as u64,
            intern_hits: self.hits.get(),
            intern_misses: self.misses.get(),
        }
    }
}

impl fmt::Debug for ValueDict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ValueDict[{} values, {} chunks]",
            self.len,
            self.chunks.len()
        )
    }
}

/// An immutable view of a [`ValueDict`] at a point in time.
///
/// Resolves every id that existed when the snapshot was taken; later interns
/// mutate the live dictionary copy-on-write and are invisible here.  Cheap to
/// take (one `Arc` clone per chunk), `Send + Sync`, lock-free to read.
#[derive(Clone)]
pub struct DictSnapshot {
    len: u32,
    chunks: Vec<Arc<Vec<Value>>>,
}

impl DictSnapshot {
    /// Number of ids this snapshot resolves.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` iff the snapshot covers no ids.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value behind `id`, or `None` for ids assigned after the snapshot.
    pub fn resolve(&self, id: u32) -> Option<&Value> {
        if id >= self.len {
            return None;
        }
        self.chunks[id as usize / CHUNK].get(id as usize % CHUNK)
    }
}

impl fmt::Debug for DictSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DictSnapshot[{} values]", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut dict = ValueDict::new();
        assert!(dict.is_empty());
        let a = dict.intern(&Value::int(7));
        let b = dict.intern(&Value::str("x"));
        let c = dict.intern(&Value::Null);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(dict.intern(&Value::int(7)), a, "re-intern returns same id");
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.resolve(a), &Value::int(7));
        assert_eq!(dict.resolve(b), &Value::str("x"));
        assert_eq!(dict.resolve(c), &Value::Null);
        assert_eq!(dict.lookup(&Value::str("x")), Some(b));
        assert_eq!(dict.lookup(&Value::str("unseen")), None);
        assert!(format!("{dict:?}").contains("3 values"));
    }

    #[test]
    fn cmp_ids_follows_value_order_not_arrival_order() {
        let mut dict = ValueDict::new();
        let null = dict.intern(&Value::Null);
        let five = dict.intern(&Value::int(5));
        let two = dict.intern(&Value::int(2));
        let s = dict.intern(&Value::str("a"));
        assert_eq!(dict.cmp_ids(two, five), Ordering::Less);
        assert_eq!(dict.cmp_ids(five, s), Ordering::Less, "ints < strings");
        assert_eq!(dict.cmp_ids(s, null), Ordering::Less, "strings < null");
        assert_eq!(dict.cmp_ids(null, null), Ordering::Equal);
    }

    #[test]
    fn growth_crosses_chunk_boundaries() {
        let mut dict = ValueDict::new();
        let n = (CHUNK * 2 + 17) as i64;
        for i in 0..n {
            assert_eq!(dict.intern(&Value::int(i)), i as u32);
        }
        assert_eq!(dict.len(), n as usize);
        for i in 0..n {
            assert_eq!(dict.resolve(i as u32), &Value::int(i));
        }
        assert!(dict.approx_bytes() > n as usize * std::mem::size_of::<Value>());
    }

    #[test]
    fn snapshots_pin_their_contents_under_later_interning() {
        let mut dict = ValueDict::new();
        for i in 0..5 {
            dict.intern(&Value::int(i));
        }
        let snap = dict.snapshot();
        assert_eq!(snap.len(), 5);
        // Later interning appends to the tail chunk copy-on-write; the
        // snapshot neither sees the new id nor observes a torn chunk.
        let new_id = dict.intern(&Value::int(99));
        assert_eq!(new_id, 5);
        assert_eq!(snap.resolve(4), Some(&Value::int(4)));
        assert_eq!(snap.resolve(5), None, "post-snapshot id is invisible");
        assert_eq!(dict.resolve(5), &Value::int(99));
        assert!(!snap.is_empty());
        assert!(format!("{snap:?}").contains("5 values"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn stats_count_hits_and_misses() {
        let mut dict = ValueDict::new();
        dict.intern(&Value::int(1));
        dict.intern(&Value::int(1));
        dict.intern(&Value::int(2));
        let stats = dict.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.intern_hits, 1);
        assert_eq!(stats.intern_misses, 2);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DictSnapshot>();
        assert_send_sync::<ValueDict>();
    }
}
