//! Attributes and schemas.
//!
//! The paper describes every relation `R_e` by the subset of attributes `e ⊆ V` it is
//! defined on.  An [`Attr`] is a named attribute (a variable such as `x1`, `node2`,
//! `ps_suppkey`); a [`Schema`] is an *ordered* list of distinct attributes giving the
//! positional layout of the rows stored in a [`crate::Relation`].

use std::fmt;
use std::sync::Arc;

/// A named attribute (query variable / column name).
///
/// Attributes are interned behind an `Arc<str>` so cloning them — which happens
/// constantly while manipulating schemas — never allocates.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attr(Arc<str>);

impl Attr {
    /// Create an attribute with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Attr(Arc::from(name.as_ref()))
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

impl From<String> for Attr {
    fn from(s: String) -> Self {
        Attr::new(s)
    }
}

/// An ordered list of distinct attributes: the layout of a relation's rows.
///
/// Schemas are tiny (query size is a constant in data complexity, §2.1), so lookups
/// are linear scans; this keeps the type allocation-free beyond the single `Vec`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    attrs: Vec<Attr>,
}

impl Schema {
    /// Build a schema from attributes.
    ///
    /// # Panics
    /// Panics if the attribute list contains duplicates — the paper assumes every
    /// relation is defined on a *set* of attributes.
    pub fn new(attrs: Vec<Attr>) -> Self {
        for (i, a) in attrs.iter().enumerate() {
            assert!(
                !attrs[..i].contains(a),
                "duplicate attribute `{a}` in schema"
            );
        }
        Schema { attrs }
    }

    /// Convenience constructor from string-like names.
    pub fn from_names<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> Self {
        Schema::new(names.into_iter().map(|n| Attr::new(n.as_ref())).collect())
    }

    /// Number of attributes (the relation's arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// `true` iff the schema has no attributes (nullary / Boolean relation).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes, in positional order.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Position of `attr` in this schema, if present.
    pub fn position(&self, attr: &Attr) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// `true` iff `attr` belongs to this schema.
    pub fn contains(&self, attr: &Attr) -> bool {
        self.attrs.contains(attr)
    }

    /// `true` iff every attribute of `other` belongs to this schema.
    pub fn contains_all(&self, other: &Schema) -> bool {
        other.attrs.iter().all(|a| self.contains(a))
    }

    /// Positions of the given attributes inside this schema.
    ///
    /// Returns `None` if any attribute is missing.
    pub fn positions_of(&self, attrs: &[Attr]) -> Option<Vec<usize>> {
        attrs.iter().map(|a| self.position(a)).collect()
    }

    /// The (order-preserving, deduplicated) intersection with another schema.
    pub fn intersect(&self, other: &Schema) -> Schema {
        Schema {
            attrs: self
                .attrs
                .iter()
                .filter(|a| other.contains(a))
                .cloned()
                .collect(),
        }
    }

    /// The union with another schema: this schema's attributes followed by the
    /// attributes of `other` not already present.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut attrs = self.attrs.clone();
        for a in &other.attrs {
            if !attrs.contains(a) {
                attrs.push(a.clone());
            }
        }
        Schema { attrs }
    }

    /// Attributes of this schema that do **not** occur in `other`.
    pub fn minus(&self, other: &Schema) -> Schema {
        Schema {
            attrs: self
                .attrs
                .iter()
                .filter(|a| !other.contains(a))
                .cloned()
                .collect(),
        }
    }

    /// `true` iff the two schemas contain the same attributes (any order).
    pub fn same_attr_set(&self, other: &Schema) -> bool {
        self.arity() == other.arity() && self.contains_all(other)
    }

    /// Iterate over the attributes.
    pub fn iter(&self) -> impl Iterator<Item = &Attr> {
        self.attrs.iter()
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Attr> for Schema {
    fn from_iter<T: IntoIterator<Item = Attr>>(iter: T) -> Self {
        Schema::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Schema {
    type Item = &'a Attr;
    type IntoIter = std::slice::Iter<'a, Attr>;
    fn into_iter(self) -> Self::IntoIter {
        self.attrs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::from_names(["a", "b", "c"])
    }

    #[test]
    fn attr_interning_and_display() {
        let a = Attr::new("x1");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.name(), "x1");
        assert_eq!(format!("{a}"), "x1");
    }

    #[test]
    fn schema_basic_accessors() {
        let s = abc();
        assert_eq!(s.arity(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.position(&Attr::new("b")), Some(1));
        assert_eq!(s.position(&Attr::new("z")), None);
        assert!(s.contains(&Attr::new("c")));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attributes_rejected() {
        Schema::from_names(["a", "b", "a"]);
    }

    #[test]
    fn positions_of_handles_missing() {
        let s = abc();
        assert_eq!(
            s.positions_of(&[Attr::new("c"), Attr::new("a")]),
            Some(vec![2, 0])
        );
        assert_eq!(s.positions_of(&[Attr::new("q")]), None);
    }

    #[test]
    fn set_operations() {
        let s = abc();
        let t = Schema::from_names(["b", "c", "d"]);
        assert_eq!(s.intersect(&t), Schema::from_names(["b", "c"]));
        assert_eq!(s.union(&t), Schema::from_names(["a", "b", "c", "d"]));
        assert_eq!(s.minus(&t), Schema::from_names(["a"]));
        assert!(s.union(&t).contains_all(&s));
        assert!(!s.same_attr_set(&t));
        assert!(s.same_attr_set(&Schema::from_names(["c", "b", "a"])));
    }

    #[test]
    fn empty_schema_is_allowed() {
        let e = Schema::from_names(Vec::<String>::new());
        assert!(e.is_empty());
        assert_eq!(e.arity(), 0);
        assert!(abc().contains_all(&e));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", abc()), "(a, b, c)");
    }
}
