//! Set-semantics relations.
//!
//! A [`Relation`] is a named, schema'd collection of [`Row`]s.  The DCQ algorithms of
//! the paper are defined under set semantics (§2.1), so most operators deduplicate
//! their outputs; the relation type keeps an internal `distinct` flag so repeated
//! deduplication is free.

use crate::error::StorageError;
use crate::hash::{set_with_capacity, FastHashSet};
use crate::row::Row;
use crate::schema::{Attr, Schema};
use crate::value::Value;
use crate::Result;
use std::fmt;

/// A relation instance: a schema plus a collection of rows.
#[derive(Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    /// `true` when `rows` is known to contain no duplicates.
    distinct: bool,
    /// Cached membership set of `rows`, maintained incrementally by the delta
    /// application path so [`Relation::apply_delta`] normalizes in `O(|delta|)`
    /// instead of rebuilding the set per call.  `None` until first requested;
    /// mutators that cannot cheaply keep it consistent drop it.
    pub(crate) row_cache: Option<FastHashSet<Row>>,
}

impl Relation {
    /// Create an empty relation with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema,
            rows: Vec::new(),
            distinct: true,
            row_cache: None,
        }
    }

    /// Create an empty relation with an anonymous name.
    pub fn empty(schema: Schema) -> Self {
        Relation::new("", schema)
    }

    /// Create a relation from rows, verifying arity.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<Self> {
        let mut rel = Relation::new(name, schema);
        for row in rows {
            rel.insert(row)?;
        }
        Ok(rel)
    }

    /// Create a relation of integer tuples — convenience for graph workloads and tests.
    pub fn from_int_rows(
        name: impl Into<String>,
        attrs: &[&str],
        rows: impl IntoIterator<Item = Vec<i64>>,
    ) -> Self {
        let schema = Schema::from_names(attrs.iter().copied());
        let mut rel = Relation::new(name, schema);
        for r in rows {
            rel.insert(r.into_iter().map(Value::Int).collect())
                .expect("int row arity");
        }
        rel
    }

    /// The relation's name (may be empty for intermediates).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the relation.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of stored rows (including duplicates if any).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The stored rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Iterate over the rows.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Insert a row, verifying its arity against the schema.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.schema.arity(),
                actual: row.arity(),
            });
        }
        if let Some(cache) = self.row_cache.as_mut() {
            cache.insert(row.clone());
        }
        self.rows.push(row);
        self.distinct = false;
        Ok(())
    }

    /// Insert a row without arity checking (hot path for operators that construct
    /// rows from the schema themselves).
    pub fn push_unchecked(&mut self, row: Row) {
        debug_assert_eq!(row.arity(), self.schema.arity());
        if let Some(cache) = self.row_cache.as_mut() {
            cache.insert(row.clone());
        }
        self.rows.push(row);
        self.distinct = false;
    }

    /// Reserve capacity for additional rows.
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
    }

    /// Mark the relation as already-distinct (used by operators whose output is
    /// distinct by construction).
    pub fn assume_distinct(&mut self) {
        self.distinct = true;
    }

    /// `true` if the relation is known to hold no duplicate rows.
    pub fn is_known_distinct(&self) -> bool {
        self.distinct
    }

    /// Keep only the rows satisfying the predicate, in place.
    ///
    /// The distinct flag is preserved: retaining a subset cannot introduce
    /// duplicates, and a relation that already held duplicates stays unmarked.
    /// The membership cache is dropped (the predicate is opaque); delta paths that
    /// know which rows they remove maintain the cache themselves.
    pub fn retain_rows<F: FnMut(&Row) -> bool>(&mut self, f: F) {
        self.row_cache = None;
        self.rows.retain(f);
    }

    /// Remove duplicate rows in place (set semantics).
    pub fn dedup(&mut self) {
        if self.distinct {
            return;
        }
        let mut seen: FastHashSet<Row> = set_with_capacity(self.rows.len());
        self.rows.retain(|r| seen.insert(r.clone()));
        self.distinct = true;
    }

    /// A deduplicated copy of this relation.
    pub fn distinct(&self) -> Relation {
        let mut r = self.clone();
        r.dedup();
        r
    }

    /// Collect the rows into a hash set.
    pub fn to_row_set(&self) -> FastHashSet<Row> {
        if let Some(cache) = &self.row_cache {
            return cache.clone();
        }
        let mut set = set_with_capacity(self.rows.len());
        for r in &self.rows {
            set.insert(r.clone());
        }
        set
    }

    /// The membership set of this relation, built on first use and maintained
    /// incrementally by the delta path afterwards.
    ///
    /// This is what makes [`Relation::apply_delta`] `O(|delta|)` on warm relations:
    /// the first call pays `O(N)` to build the set, every later normalization reuses
    /// it.  Mutators that cannot keep the set consistent ([`Relation::retain_rows`],
    /// [`Relation::reorder_to`]) drop it; it is rebuilt on the next call.
    pub fn cached_row_set(&mut self) -> &FastHashSet<Row> {
        if self.row_cache.is_none() {
            let mut set = set_with_capacity(self.rows.len());
            for r in &self.rows {
                set.insert(r.clone());
            }
            self.row_cache = Some(set);
        }
        self.row_cache.as_ref().expect("cache was just built")
    }

    /// `true` iff the membership cache is currently materialized (delta
    /// applications will normalize in `O(|delta|)` without an `O(N)` rebuild).
    pub fn row_cache_is_warm(&self) -> bool {
        self.row_cache.is_some()
    }

    /// Rows sorted lexicographically — deterministic order for tests and display.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }

    /// Number of *distinct* rows.
    pub fn distinct_count(&self) -> usize {
        if self.distinct {
            self.rows.len()
        } else {
            self.to_row_set().len()
        }
    }

    /// Project the relation onto `attrs` (with deduplication).
    ///
    /// Attributes may be listed in any order; the output schema follows the order of
    /// `attrs`.
    pub fn project(&self, attrs: &[Attr]) -> Result<Relation> {
        let positions =
            self.schema
                .positions_of(attrs)
                .ok_or_else(|| StorageError::UnknownAttribute {
                    attr: attrs
                        .iter()
                        .find(|a| !self.schema.contains(a))
                        .map(|a| a.name().to_string())
                        .unwrap_or_default(),
                    schema: self.schema.clone(),
                })?;
        let schema = Schema::new(attrs.to_vec());
        let mut out = Relation::new(format!("π({})", self.name), schema);
        out.reserve(self.rows.len());
        let mut seen: FastHashSet<Row> = set_with_capacity(self.rows.len());
        for row in &self.rows {
            let p = row.project(&positions);
            if seen.insert(p.clone()) {
                out.rows.push(p);
            }
        }
        out.distinct = true;
        Ok(out)
    }

    /// Keep only rows satisfying the predicate (σ).
    pub fn filter<F: FnMut(&Row) -> bool>(&self, mut pred: F) -> Relation {
        let mut out = Relation::new(format!("σ({})", self.name), self.schema.clone());
        out.rows = self.rows.iter().filter(|r| pred(r)).cloned().collect();
        out.distinct = self.distinct;
        out
    }

    /// `true` iff the relation contains `row` (linear scan; build a
    /// [`HashIndex`](crate::HashIndex) for repeated probes).
    pub fn contains_row(&self, row: &Row) -> bool {
        self.rows.iter().any(|r| r == row)
    }

    /// Re-label the schema of this relation (same arity, new attribute names).
    ///
    /// This is how a stored relation `Graph(src, dst)` becomes the query atom
    /// `Graph(node1, node2)`: values are untouched, only the attribute names change.
    pub fn with_schema(&self, schema: Schema) -> Result<Relation> {
        if schema.arity() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch {
                left: self.schema.clone(),
                right: schema,
                operation: "with_schema",
            });
        }
        Ok(Relation {
            name: self.name.clone(),
            schema,
            rows: self.rows.clone(),
            distinct: self.distinct,
            // Relabeling does not change row values, so membership is unchanged.
            row_cache: self.row_cache.clone(),
        })
    }

    /// Reorder columns so that the relation's schema becomes exactly `target`
    /// (which must contain the same attribute set).
    pub fn reorder_to(&self, target: &Schema) -> Result<Relation> {
        if !self.schema.same_attr_set(target) {
            return Err(StorageError::SchemaMismatch {
                left: self.schema.clone(),
                right: target.clone(),
                operation: "reorder_to",
            });
        }
        let positions = self
            .schema
            .positions_of(target.attrs())
            .expect("same attr set implies positions exist");
        let mut out = Relation::new(self.name.clone(), target.clone());
        out.rows = self.rows.iter().map(|r| r.project(&positions)).collect();
        out.distinct = self.distinct;
        Ok(out)
    }

    /// Set difference `self − other` (schemas must have the same attribute set;
    /// `other` is reordered if needed).  Output is distinct.
    pub fn minus(&self, other: &Relation) -> Result<Relation> {
        let other = if other.schema == self.schema {
            other.clone()
        } else {
            other.reorder_to(&self.schema)?
        };
        let right = other.to_row_set();
        let mut out = Relation::new(
            format!("({})−({})", self.name, other.name),
            self.schema.clone(),
        );
        let mut seen: FastHashSet<Row> = set_with_capacity(self.rows.len());
        for r in &self.rows {
            if !right.contains(r) && seen.insert(r.clone()) {
                out.rows.push(r.clone());
            }
        }
        out.distinct = true;
        Ok(out)
    }

    /// Set union (distinct) of two relations over the same attribute set.
    pub fn union_set(&self, other: &Relation) -> Result<Relation> {
        let other = if other.schema == self.schema {
            other.clone()
        } else {
            other.reorder_to(&self.schema)?
        };
        let mut out = Relation::new(
            format!("({})∪({})", self.name, other.name),
            self.schema.clone(),
        );
        let mut seen: FastHashSet<Row> = set_with_capacity(self.rows.len() + other.rows.len());
        for r in self.rows.iter().chain(other.rows.iter()) {
            if seen.insert(r.clone()) {
                out.rows.push(r.clone());
            }
        }
        out.distinct = true;
        Ok(out)
    }

    /// Set intersection of two relations over the same attribute set.
    pub fn intersect_set(&self, other: &Relation) -> Result<Relation> {
        let other = if other.schema == self.schema {
            other.clone()
        } else {
            other.reorder_to(&self.schema)?
        };
        let right = other.to_row_set();
        let mut out = Relation::new(
            format!("({})∩({})", self.name, other.name),
            self.schema.clone(),
        );
        let mut seen: FastHashSet<Row> = set_with_capacity(self.rows.len());
        for r in &self.rows {
            if right.contains(r) && seen.insert(r.clone()) {
                out.rows.push(r.clone());
            }
        }
        out.distinct = true;
        Ok(out)
    }

    /// Estimated heap footprint in bytes (used by the Figure 9 memory experiment).
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Relation>();
        bytes += self.rows.capacity() * std::mem::size_of::<Row>();
        for row in &self.rows {
            bytes += row.arity() * std::mem::size_of::<Value>();
            for v in row.iter() {
                if let Value::Str(s) = v {
                    bytes += s.len();
                }
            }
        }
        bytes
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}{} [{} rows]", self.name, self.schema, self.rows.len())?;
        for row in self.rows.iter().take(20) {
            writeln!(f, "  {row}")?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  … ({} more)", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    fn graph() -> Relation {
        Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![1, 2], vec![3, 1]],
        )
    }

    #[test]
    fn insert_checks_arity() {
        let mut r = Relation::new("R", Schema::from_names(["a", "b"]));
        assert!(r.insert(int_row([1, 2])).is_ok());
        let err = r.insert(int_row([1, 2, 3])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn dedup_and_distinct_count() {
        let mut g = graph();
        assert_eq!(g.len(), 4);
        assert_eq!(g.distinct_count(), 3);
        g.dedup();
        assert_eq!(g.len(), 3);
        assert!(g.is_known_distinct());
        // A second dedup is a no-op.
        g.dedup();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn projection_dedups_and_reorders() {
        let g = graph();
        let p = g.project(&[Attr::new("dst")]).unwrap();
        assert_eq!(p.schema(), &Schema::from_names(["dst"]));
        assert_eq!(
            p.sorted_rows(),
            vec![int_row([1]), int_row([2]), int_row([3])]
        );

        let swapped = g.project(&[Attr::new("dst"), Attr::new("src")]).unwrap();
        assert!(swapped.rows().contains(&int_row([2, 1])));
    }

    #[test]
    fn projection_unknown_attribute_errors() {
        let g = graph();
        assert!(matches!(
            g.project(&[Attr::new("missing")]),
            Err(StorageError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn filter_preserves_schema() {
        let g = graph();
        let f = g.filter(|r| r.get(0) == &Value::int(1));
        assert_eq!(f.schema(), g.schema());
        assert_eq!(f.distinct_count(), 1);
    }

    #[test]
    fn set_difference_union_intersection() {
        let a = Relation::from_int_rows("A", &["x", "y"], vec![vec![1, 1], vec![1, 2], vec![2, 2]]);
        let b = Relation::from_int_rows("B", &["x", "y"], vec![vec![1, 2], vec![3, 3]]);
        let d = a.minus(&b).unwrap();
        assert_eq!(d.sorted_rows(), vec![int_row([1, 1]), int_row([2, 2])]);
        let u = a.union_set(&b).unwrap();
        assert_eq!(u.distinct_count(), 4);
        let i = a.intersect_set(&b).unwrap();
        assert_eq!(i.sorted_rows(), vec![int_row([1, 2])]);
    }

    #[test]
    fn set_ops_align_column_order() {
        let a = Relation::from_int_rows("A", &["x", "y"], vec![vec![1, 2]]);
        let b = Relation::from_int_rows("B", &["y", "x"], vec![vec![2, 1]]);
        // (1,2) in (x,y) equals (2,1) in (y,x): difference must be empty.
        assert!(a.minus(&b).unwrap().is_empty());
        assert_eq!(a.intersect_set(&b).unwrap().len(), 1);
    }

    #[test]
    fn set_ops_reject_different_attr_sets() {
        let a = Relation::from_int_rows("A", &["x", "y"], vec![vec![1, 2]]);
        let b = Relation::from_int_rows("B", &["x", "z"], vec![vec![1, 2]]);
        assert!(a.minus(&b).is_err());
    }

    #[test]
    fn with_schema_relabels() {
        let g = graph();
        let relabeled = g
            .with_schema(Schema::from_names(["node1", "node2"]))
            .unwrap();
        assert_eq!(relabeled.schema(), &Schema::from_names(["node1", "node2"]));
        assert_eq!(relabeled.len(), g.len());
        assert!(g.with_schema(Schema::from_names(["only_one"])).is_err());
    }

    #[test]
    fn reorder_to_permutes_values() {
        let g = graph().distinct();
        let r = g.reorder_to(&Schema::from_names(["dst", "src"])).unwrap();
        assert!(r.rows().contains(&int_row([2, 1])));
        assert!(r.rows().contains(&int_row([3, 2])));
    }

    #[test]
    fn nullary_relations() {
        let mut t = Relation::new("T", Schema::from_names(Vec::<String>::new()));
        assert!(t.is_empty());
        t.insert(Row::empty()).unwrap();
        t.insert(Row::empty()).unwrap();
        t.dedup();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn row_cache_tracks_mutations_and_invalidates() {
        let mut g = graph();
        assert!(!g.row_cache_is_warm());
        assert!(g.cached_row_set().contains(&int_row([1, 2])));
        assert!(g.row_cache_is_warm());

        // Cheap mutators keep the cache consistent.
        g.insert(int_row([9, 9])).unwrap();
        g.push_unchecked(int_row([8, 8]));
        assert!(g.row_cache_is_warm());
        assert!(g.cached_row_set().contains(&int_row([9, 9])));
        assert!(g.cached_row_set().contains(&int_row([8, 8])));
        assert_eq!(g.to_row_set(), g.cached_row_set().clone());

        // An opaque retain drops the cache; the next request rebuilds it.
        g.retain_rows(|r| r != &int_row([9, 9]));
        assert!(!g.row_cache_is_warm());
        assert!(!g.cached_row_set().contains(&int_row([9, 9])));

        // Dedup does not change membership, so the cache survives.
        g.dedup();
        assert!(g.row_cache_is_warm());

        // Relabeling keeps values (and the cache); reordering does not.
        let relabeled = g.with_schema(Schema::from_names(["a", "b"])).unwrap();
        assert!(relabeled.row_cache_is_warm());
        let reordered = g.reorder_to(&Schema::from_names(["dst", "src"])).unwrap();
        assert!(!reordered.row_cache_is_warm());
    }

    #[test]
    fn approx_bytes_grows_with_rows() {
        let small = Relation::from_int_rows("S", &["a"], vec![vec![1]]);
        let large =
            Relation::from_int_rows("L", &["a"], (0..1000).map(|i| vec![i]).collect::<Vec<_>>());
        assert!(large.approx_bytes() > small.approx_bytes());
    }
}
