//! Fast, non-cryptographic hashing.
//!
//! Hash joins, semi-joins and set differences dominate the running time of every
//! algorithm in the paper, so the default SipHash hasher of the standard library is
//! replaced by an FxHash-style multiply-xor hasher (the same family `rustc` uses).
//! HashDoS resistance is irrelevant for a query engine operating on trusted
//! in-memory data.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash family (64-bit golden-ratio prime).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher: rotate, xor, multiply per 8-byte word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_word(i as u64);
    }
}

/// Build-hasher for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hasher.
pub type FastHashSet<K> = HashSet<K, FxBuildHasher>;

/// Create an empty [`FastHashMap`] with the given capacity.
pub fn map_with_capacity<K, V>(cap: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Create an empty [`FastHashSet`] with the given capacity.
pub fn set_with_capacity<K>(cap: usize) -> FastHashSet<K> {
    FastHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Deterministically route an id block to one of `shards` buckets by its Fx
/// hash — the one routing function shared by the sharded relation mirrors,
/// the per-shard index buckets, and the partitioned counting folds, so a row
/// lands in the same shard everywhere.  The hasher is fixed-seeded, so the
/// assignment depends only on the ids (never on process, platform, or run).
pub fn shard_of_ids(ids: &[u32], shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut hasher = FxHasher::default();
    for &id in ids {
        hasher.write_u32(id);
    }
    (std::hash::Hasher::finish(&hasher) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx_hash<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(fx_hash(&(1u64, 2u64)), fx_hash(&(1u64, 2u64)));
        assert_eq!(fx_hash(&"hello"), fx_hash(&"hello"));
    }

    #[test]
    fn different_values_usually_hash_different() {
        // Not a cryptographic guarantee, but these simple cases must not collide.
        assert_ne!(fx_hash(&1u64), fx_hash(&2u64));
        assert_ne!(fx_hash(&"abc"), fx_hash(&"abd"));
        assert_ne!(fx_hash(&(1u64, 2u64)), fx_hash(&(2u64, 1u64)));
    }

    #[test]
    fn distribution_over_small_ints_is_reasonable() {
        // 10k consecutive integers into 1024 buckets: no bucket should be wildly hot.
        let mut buckets = vec![0u32; 1024];
        for i in 0..10_000u64 {
            buckets[(fx_hash(&i) % 1024) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 100, "suspiciously skewed bucket: {max}");
    }

    #[test]
    fn map_and_set_helpers_work() {
        let mut m: FastHashMap<u64, u64> = map_with_capacity(16);
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10));
        let mut s: FastHashSet<&str> = set_with_capacity(4);
        s.insert("a");
        assert!(s.contains("a"));
        assert!(!s.contains("b"));
    }

    #[test]
    fn partial_trailing_bytes_are_hashed() {
        // Strings that differ only in a trailing partial word must differ.
        assert_ne!(fx_hash(&"12345678a"), fx_hash(&"12345678b"));
        assert_ne!(fx_hash(&"12345678"), fx_hash(&"12345678\0"));
    }
}
