//! Databases: named collections of relations.
//!
//! A [`Database`] is the instance `D` a (difference of) conjunctive query is
//! evaluated over.  The paper formally gives each input CQ its own instance
//! (`D₁`, `D₂`); in this implementation a single `Database` can back both queries —
//! atoms reference stored relations by name.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::Result;
use crate::StorageError;
use std::collections::BTreeMap;
use std::fmt;

/// A named collection of relation instances.
#[derive(Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a relation under its own name.
    ///
    /// Fails if a relation with the same name already exists.
    pub fn add(&mut self, relation: Relation) -> Result<()> {
        let name = relation.name().to_string();
        if name.is_empty() {
            return Err(StorageError::UnknownRelation(
                "cannot register an unnamed relation".into(),
            ));
        }
        if self.relations.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name));
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Register or replace a relation under its own name.
    pub fn add_or_replace(&mut self, relation: Relation) {
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Look up a relation by name, mutably.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// `true` iff a relation with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Remove a relation, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Number of registered relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations — the input size `N` of the paper.
    pub fn input_size(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Iterate over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Names of all registered relations, in sorted order.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// The schema of a named relation.
    pub fn schema_of(&self, name: &str) -> Result<&Schema> {
        Ok(self.get(name)?.schema())
    }

    /// Estimated heap footprint in bytes (Figure 9 memory accounting).
    pub fn approx_bytes(&self) -> usize {
        self.relations.values().map(|r| r.approx_bytes()).sum()
    }

    /// Merge another database into this one, replacing relations with equal names.
    pub fn merge(&mut self, other: Database) {
        for (_, rel) in other.relations {
            self.add_or_replace(rel);
        }
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Database [{} relations, {} tuples]",
            self.relation_count(),
            self.input_size()
        )?;
        for (name, rel) in &self.relations {
            writeln!(f, "  {name}{} : {} rows", rel.schema(), rel.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Triple",
            &["node1", "node2", "node3"],
            vec![vec![1, 2, 3]],
        ))
        .unwrap();
        db
    }

    #[test]
    fn add_get_and_sizes() {
        let db = sample_db();
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.input_size(), 3);
        assert!(db.contains("Graph"));
        assert_eq!(db.get("Graph").unwrap().len(), 2);
        assert!(db.get("Missing").is_err());
        assert_eq!(
            db.relation_names(),
            vec!["Graph".to_string(), "Triple".to_string()]
        );
    }

    #[test]
    fn duplicate_names_rejected_but_replace_allowed() {
        let mut db = sample_db();
        let dup = Relation::from_int_rows("Graph", &["src", "dst"], vec![vec![9, 9]]);
        assert!(matches!(
            db.add(dup.clone()),
            Err(StorageError::DuplicateRelation(_))
        ));
        db.add_or_replace(dup);
        assert_eq!(db.get("Graph").unwrap().len(), 1);
    }

    #[test]
    fn unnamed_relations_rejected() {
        let mut db = Database::new();
        let anon = Relation::empty(Schema::from_names(["a"]));
        assert!(db.add(anon).is_err());
    }

    #[test]
    fn remove_and_mutate() {
        let mut db = sample_db();
        db.get_mut("Graph")
            .unwrap()
            .insert(crate::row::int_row([3, 1]))
            .unwrap();
        assert_eq!(db.get("Graph").unwrap().len(), 3);
        let removed = db.remove("Triple").unwrap();
        assert_eq!(removed.name(), "Triple");
        assert_eq!(db.relation_count(), 1);
    }

    #[test]
    fn merge_replaces_and_adds() {
        let mut db = sample_db();
        let mut other = Database::new();
        other
            .add(Relation::from_int_rows(
                "Graph",
                &["src", "dst"],
                vec![vec![7, 7]],
            ))
            .unwrap();
        other
            .add(Relation::from_int_rows("Extra", &["k"], vec![vec![1]]))
            .unwrap();
        db.merge(other);
        assert_eq!(db.get("Graph").unwrap().len(), 1);
        assert!(db.contains("Extra"));
        assert_eq!(db.relation_count(), 3);
    }

    #[test]
    fn schema_lookup() {
        let db = sample_db();
        assert_eq!(db.schema_of("Graph").unwrap().arity(), 2);
        assert!(db.schema_of("Nope").is_err());
    }
}
