//! # dcq-storage
//!
//! In-memory relational storage substrate for **dcqx**, the Rust reproduction of
//! *Computing the Difference of Conjunctive Queries Efficiently* (Hu & Wang,
//! SIGMOD 2023).
//!
//! The paper's data model (§2.1) is the standard multi-relational database: a set of
//! attributes `V`, relations `R_e` each defined over a subset of attributes `e ⊆ V`,
//! and tuples assigning a domain value to every attribute of their relation.  This
//! crate provides exactly that model, with the pieces every higher layer builds on:
//!
//! * [`Value`] — a domain value (64-bit integer, interned string, or null),
//! * [`Attr`] / [`Schema`] — named attributes and ordered attribute lists,
//! * [`Row`] — a tuple of values, positionally aligned with a [`Schema`],
//! * [`Relation`] — a set-semantics relation (schema + distinct rows),
//! * [`HashIndex`] — hash index on a subset of a relation's attributes,
//! * [`annotated`] — relations annotated with commutative (semi)ring elements,
//!   used for aggregation (§5.3) and bag semantics (§5.4),
//! * [`delta`] — signed tuple deltas ([`DeltaBatch`]), set-semantics normalization
//!   and the replayable [`UpdateLog`] consumed by `dcq-incremental`,
//! * [`checkpoint`] — versioned, checksummed on-disk serialization of database
//!   checkpoints, update logs and write-ahead-log frames,
//! * [`Database`] — a named collection of relations (one query instance),
//! * [`shared`] — the epoch-versioned [`SharedDatabase`] of record that one engine
//!   owns and many maintained views read through ([`RelationRef`]), with `O(|Δ|)`
//!   updates and per-batch normalized deltas ([`AppliedBatch`]),
//! * [`registry`] — the store's refcounted **index registry** ([`IndexRegistry`]):
//!   shared hash indexes in stored-column coordinates, acquired per query plan
//!   ([`IndexKey`] → [`IndexId`]) and maintained exactly once per applied batch.
//!
//! The crate is deliberately free of query logic: acyclicity lives in
//! `dcq-hypergraph`, operators in `dcq-exec`, and the DCQ algorithms in `dcq-core`.

#![warn(missing_docs)]

pub mod annotated;
pub mod checkpoint;
pub mod database;
pub mod delta;
pub mod dict;
pub mod error;
pub mod fanout;
pub mod flat;
pub mod hash;
pub mod idkey;
pub mod index;
pub mod registry;
pub mod relation;
pub mod row;
pub mod schema;
pub mod shared;
pub(crate) mod tele;
pub mod value;

pub use annotated::{AnnotatedRelation, BagRelation, Ring, Semiring};
pub use checkpoint::{read_checkpoint, write_checkpoint};
pub use database::Database;
pub use delta::{normalize_delta, BatchEffect, DeltaBatch, DeltaEffect, UpdateLog};
pub use dict::{DictSnapshot, DictStats, ValueDict};
pub use error::StorageError;
pub use fanout::WorkerPool;
pub use flat::{IdDelta, RelationStore, ShardedRelationStore, STORE_SHARDS};
pub use hash::{FastHashMap, FastHashSet};
pub use idkey::{IdKey, IDKEY_INLINE};
pub use index::HashIndex;
pub use registry::{
    IndexId, IndexKey, IndexRegistry, IndexRegistryStats, IndexSnapshot, IndexTelemetry,
    SharedIndex,
};
pub use relation::Relation;
pub use row::{row_allocations, Row};
pub use schema::{Attr, Schema};
pub use shared::{AppliedBatch, Epoch, RelationRef, SharedDatabase};
pub use value::Value;

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
