//! Packed dictionary-id keys.
//!
//! The flat storage layer keys every hash structure — index buckets, support
//! counts, flat-store membership — by a short sequence of dictionary ids
//! instead of a hashed [`Row`](crate::Row) of boxed [`Value`](crate::Value)s.
//! [`IdKey`] is that key: up to [`IDKEY_INLINE`] ids live inline (no heap
//! allocation at all for every realistic join key and head arity), longer keys
//! spill to one boxed slice.
//!
//! The type's `Hash`/`Eq`/`Ord` all delegate to the id slice, and
//! `Borrow<[u32]>` is implemented so a `FastHashMap<IdKey, V>` can be probed
//! with a **borrowed** `&[u32]` — a stack buffer on the hot path — without
//! materializing a key: `map.get(ids)` where `ids: &[u32]`.  That is the
//! zero-allocation probe discipline the delta-join fold runs on.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Ids stored inline before an [`IdKey`] spills to the heap.
pub const IDKEY_INLINE: usize = 6;

/// A short, packed sequence of dictionary ids used as a hash key.
#[derive(Clone)]
pub enum IdKey {
    /// Up to [`IDKEY_INLINE`] ids, no heap allocation.
    Inline {
        /// Number of valid ids in `ids`.
        len: u8,
        /// The ids; positions `len..` are zero-filled padding.
        ids: [u32; IDKEY_INLINE],
    },
    /// Keys longer than [`IDKEY_INLINE`] ids (rare: wide heads / wide rows).
    Heap(Box<[u32]>),
}

impl IdKey {
    /// Pack a slice of ids.
    pub fn from_slice(ids: &[u32]) -> Self {
        if ids.len() <= IDKEY_INLINE {
            let mut inline = [0u32; IDKEY_INLINE];
            inline[..ids.len()].copy_from_slice(ids);
            IdKey::Inline {
                len: ids.len() as u8,
                ids: inline,
            }
        } else {
            IdKey::Heap(ids.into())
        }
    }

    /// The empty (nullary) key — the single tuple of a Boolean relation.
    pub fn empty() -> Self {
        IdKey::from_slice(&[])
    }

    /// The packed ids.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            IdKey::Inline { len, ids } => &ids[..*len as usize],
            IdKey::Heap(ids) => ids,
        }
    }

    /// Number of ids in the key.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` iff the key holds no ids.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes owned by this key (zero for inline keys).
    pub fn heap_bytes(&self) -> usize {
        match self {
            IdKey::Inline { .. } => 0,
            IdKey::Heap(ids) => ids.len() * std::mem::size_of::<u32>(),
        }
    }
}

impl PartialEq for IdKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for IdKey {}

impl Hash for IdKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match `<[u32] as Hash>::hash` exactly: `Borrow<[u32]>` lets a
        // map keyed by `IdKey` be probed with a bare `&[u32]`, and `HashMap`
        // requires `hash(key) == hash(key.borrow())`.
        self.as_slice().hash(state)
    }
}

impl PartialOrd for IdKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IdKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Borrow<[u32]> for IdKey {
    fn borrow(&self) -> &[u32] {
        self.as_slice()
    }
}

impl From<&[u32]> for IdKey {
    fn from(ids: &[u32]) -> Self {
        IdKey::from_slice(ids)
    }
}

impl fmt::Debug for IdKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IdKey{:?}", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FastHashMap;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash + ?Sized>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn inline_and_heap_round_trip() {
        for len in 0..=IDKEY_INLINE + 3 {
            let ids: Vec<u32> = (0..len as u32).map(|i| i * 7 + 1).collect();
            let key = IdKey::from_slice(&ids);
            assert_eq!(key.as_slice(), ids.as_slice());
            assert_eq!(key.len(), len);
            assert_eq!(key.is_empty(), len == 0);
            let spilled = len > IDKEY_INLINE;
            assert_eq!(key.heap_bytes() > 0, spilled, "spill boundary at {len}");
        }
        assert_eq!(IdKey::empty().as_slice(), &[] as &[u32]);
    }

    #[test]
    fn hash_matches_slice_hash_for_borrowed_probes() {
        for ids in [&[][..], &[5][..], &[1, 2, 3][..], &[9; 9][..]] {
            assert_eq!(hash_of(&IdKey::from_slice(ids)), hash_of(ids));
        }
        // The property `Borrow` exists for: probe a keyed map with a slice.
        let mut map: FastHashMap<IdKey, i64> = FastHashMap::default();
        map.insert(IdKey::from_slice(&[3, 1, 4]), 42);
        let probe: &[u32] = &[3, 1, 4];
        assert_eq!(map.get(probe), Some(&42));
        assert_eq!(map.get(&[3u32, 1][..]), None);
    }

    #[test]
    fn equality_and_order_follow_the_slice() {
        assert_eq!(IdKey::from_slice(&[1, 2]), IdKey::from_slice(&[1, 2]));
        assert_ne!(IdKey::from_slice(&[1, 2]), IdKey::from_slice(&[2, 1]));
        let mut keys = [
            IdKey::from_slice(&[2]),
            IdKey::from_slice(&[1, 9]),
            IdKey::from_slice(&[1]),
        ];
        keys.sort();
        assert_eq!(keys[0].as_slice(), &[1]);
        assert_eq!(keys[1].as_slice(), &[1, 9]);
        assert_eq!(keys[2].as_slice(), &[2]);
        assert!(format!("{:?}", keys[1]).contains("[1, 9]"));
    }
}
