//! Durable on-disk serialization for checkpoints and update logs.
//!
//! Every artifact shares one framing discipline: an 8-byte magic, a version
//! byte, a little-endian length, the payload, and a CRC-32 (IEEE) over the
//! payload.  Readers validate magic, version, and checksum before parsing a
//! single payload byte, and every failure — truncation included — surfaces as
//! a typed [`StorageError`], never a panic.
//!
//! Three artifact kinds are defined here:
//!
//! * **Checkpoint** ([`write_checkpoint`] / [`read_checkpoint`]) — one
//!   [`Database`] snapshot tagged with the epoch it was taken at.  This is the
//!   serialized form of an engine's `LogCheckpoint` and the base state of
//!   crash recovery.
//! * **Update log** ([`UpdateLog::to_writer`] / [`UpdateLog::from_reader`]) —
//!   a whole retained log (batches + counters + base epoch) in one framed
//!   payload.
//! * **WAL frames** ([`write_wal_header`], [`write_batch_frame`] /
//!   [`read_batch_frame`]) — an append-friendly stream of individually
//!   CRC-framed [`DeltaBatch`]es for write-ahead logging.  Each frame is
//!   self-checking, so a reader can replay a crashed writer's log up to the
//!   first torn frame and ignore the tail.
//!
//! ## Format versions
//!
//! Version **2** (current) mirrors the in-memory flat interned layout: every
//! payload carries a **file-local value dictionary** (each distinct
//! [`Value`] once, in first-occurrence order) and encodes rows as dense
//! `u32` id tuples against it — checkpoint relations as flat id *columns*,
//! log/WAL batches as id rows.  Values that repeat across rows (the common
//! case for graph data) are serialized once instead of per occurrence.  WAL
//! batch frames use a frame-local dictionary so each frame stays
//! independently replayable; the WAL *file* version is declared by its
//! header frame.
//!
//! Version **1** encoded every value inline at each occurrence.  Readers
//! accept one version back ([`MIN_SUPPORTED_VERSION`]): v1 artifacts written
//! by the previous release load transparently; writers always emit
//! [`FORMAT_VERSION`].
//!
//! The recovery invariant the formats exist to uphold:
//! `checkpoint ⊕ retained log = current state`.

use crate::database::Database;
use crate::delta::{DeltaBatch, DeltaEffect, UpdateLog};
use crate::hash::FastHashMap;
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::Schema;
use crate::shared::Epoch;
use crate::value::Value;
use crate::{Result, StorageError};
use std::io::{Read, Write};
use std::sync::OnceLock;

/// Magic prefix of a serialized checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"DCQSNAP\0";
/// Magic prefix of a serialized update-log file.
pub const LOG_MAGIC: &[u8; 8] = b"DCQLOG\0\0";
/// Magic prefix of a write-ahead-log file.
pub const WAL_MAGIC: &[u8; 8] = b"DCQWAL\0\0";
/// Newest serialization format version this build reads and writes.
pub const FORMAT_VERSION: u8 = 2;
/// Oldest format version this build still reads (one version back).
pub const MIN_SUPPORTED_VERSION: u8 = 1;

/// Hard ceiling on any framed payload (64 GiB); a declared length beyond it
/// is treated as corruption instead of an allocation attempt.
const MAX_PAYLOAD: u64 = 1 << 36;
/// Ceiling on a single WAL batch frame (1 GiB).
const MAX_FRAME: u32 = 1 << 30;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0u32;
        while i < 256 {
            let mut crc = i;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i as usize] = crc;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Payload encoding / decoding primitives
// ---------------------------------------------------------------------------

fn corrupt(artifact: &'static str, detail: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        artifact,
        detail: detail.into(),
    }
}

/// File-local value dictionary built while encoding one v2 payload: each
/// distinct value gets a dense id in first-occurrence order.  This is the
/// serialized twin of the store's in-memory
/// [`ValueDict`](crate::dict::ValueDict), rebuilt per artifact so files stay
/// self-contained and ids stay small.
#[derive(Default)]
struct FileDict {
    by_value: FastHashMap<Value, u32>,
    values: Vec<Value>,
}

impl FileDict {
    fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&id) = self.by_value.get(v) {
            return id;
        }
        let id = self.values.len() as u32;
        self.by_value.insert(v.clone(), id);
        self.values.push(v.clone());
        id
    }

    fn id_of(&self, v: &Value) -> u32 {
        self.by_value[v]
    }

    fn absorb_row(&mut self, row: &Row) {
        for v in row.iter() {
            self.intern(v);
        }
    }

    fn absorb_batch(&mut self, batch: &DeltaBatch) {
        for (_, ops) in batch.iter() {
            for (row, _) in ops {
                self.absorb_row(row);
            }
        }
    }
}

/// Append-only payload encoder.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.u8(0);
                self.i64(*i);
            }
            Value::Str(s) => {
                self.u8(1);
                self.str(s);
            }
            Value::Null => self.u8(2),
        }
    }

    /// The file-local dictionary: count, then every value once in id order.
    fn dict(&mut self, dict: &FileDict) {
        self.u32(dict.values.len() as u32);
        for v in &dict.values {
            self.value(v);
        }
    }

    #[cfg(test)]
    fn row(&mut self, row: &Row) {
        self.u16(row.arity() as u16);
        for v in row.iter() {
            self.value(v);
        }
    }

    /// One relation in v2 layout: schema, then the rows as `arity` flat id
    /// **columns** against `dict` — the serialized form of the store's
    /// [`RelationStore`](crate::flat::RelationStore).
    fn relation_v2(&mut self, rel: &Relation, dict: &FileDict) {
        self.str(rel.name());
        self.u16(rel.schema().arity() as u16);
        for attr in rel.schema().attrs() {
            self.str(attr.name());
        }
        self.u64(rel.len() as u64);
        for p in 0..rel.schema().arity() {
            for row in rel.iter() {
                self.u32(dict.id_of(row.get(p)));
            }
        }
    }

    fn database_v2(&mut self, db: &Database, dict: &FileDict) {
        self.u32(db.relation_count() as u32);
        for (_, rel) in db.iter() {
            self.relation_v2(rel, dict);
        }
    }

    /// One batch in v2 layout: rows as id tuples against `dict`.
    fn batch_v2(&mut self, batch: &DeltaBatch, dict: &FileDict) {
        self.u32(batch.relations().count() as u32);
        for (name, ops) in batch.iter() {
            self.str(name);
            self.u32(ops.len() as u32);
            for (row, sign) in ops {
                self.u8(if *sign >= 0 { b'+' } else { b'-' });
                self.u16(row.arity() as u16);
                for v in row.iter() {
                    self.u32(dict.id_of(v));
                }
            }
        }
    }

    /// One batch in v1 layout (values inline); kept for the compat fixtures.
    #[cfg(test)]
    fn batch_v1(&mut self, batch: &DeltaBatch) {
        self.u32(batch.relations().count() as u32);
        for (name, ops) in batch.iter() {
            self.str(name);
            self.u32(ops.len() as u32);
            for (row, sign) in ops {
                self.u8(if *sign >= 0 { b'+' } else { b'-' });
                self.row(row);
            }
        }
    }

    /// One relation in v1 layout (values inline); kept for the compat fixtures.
    #[cfg(test)]
    fn relation_v1(&mut self, rel: &Relation) {
        self.str(rel.name());
        self.u16(rel.schema().arity() as u16);
        for attr in rel.schema().attrs() {
            self.str(attr.name());
        }
        self.u64(rel.len() as u64);
        for row in rel.iter() {
            self.row(row);
        }
    }
}

/// Cursor-based payload decoder; every read is bounds-checked and a short
/// buffer is reported as corruption of `artifact`.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    artifact: &'static str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], artifact: &'static str) -> Self {
        Dec {
            buf,
            pos: 0,
            artifact,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| corrupt(self.artifact, "payload ends mid-field"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(self.artifact, "string field is not valid UTF-8"))
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::str(self.str()?)),
            2 => Ok(Value::Null),
            tag => Err(corrupt(self.artifact, format!("unknown value tag {tag}"))),
        }
    }

    /// The file-local dictionary of a v2 payload.
    fn dict(&mut self) -> Result<Vec<Value>> {
        let count = self.u32()? as u64;
        if count > MAX_PAYLOAD {
            return Err(corrupt(self.artifact, "implausible dictionary size"));
        }
        let mut values = Vec::with_capacity(count as usize);
        for _ in 0..count {
            values.push(self.value()?);
        }
        Ok(values)
    }

    /// One dictionary id, validated against the file dictionary.
    fn id<'d>(&mut self, dict: &'d [Value]) -> Result<&'d Value> {
        let id = self.u32()? as usize;
        dict.get(id)
            .ok_or_else(|| corrupt(self.artifact, format!("dictionary id {id} out of range")))
    }

    fn row(&mut self) -> Result<Row> {
        let arity = self.u16()? as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Ok(Row::new(values))
    }

    fn relation_v1(&mut self) -> Result<Relation> {
        let name = self.str()?;
        let arity = self.u16()? as usize;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            attrs.push(self.str()?);
        }
        let schema = Schema::from_names(attrs);
        let mut rel = Relation::new(name, schema);
        let rows = self.u64()?;
        if rows > MAX_PAYLOAD {
            return Err(corrupt(self.artifact, "implausible row count"));
        }
        for _ in 0..rows {
            let row = self.row()?;
            if row.arity() != arity {
                return Err(corrupt(self.artifact, "row arity disagrees with schema"));
            }
            rel.push_unchecked(row);
        }
        // A checkpointed store holds set-semantics relations; writers only
        // emit deduplicated stores, but dedup anyway so a hand-edited file
        // cannot smuggle duplicates past the invariant.
        rel.dedup();
        Ok(rel)
    }

    fn relation_v2(&mut self, dict: &[Value]) -> Result<Relation> {
        let name = self.str()?;
        let arity = self.u16()? as usize;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            attrs.push(self.str()?);
        }
        let schema = Schema::from_names(attrs);
        let mut rel = Relation::new(name, schema);
        let rows = self.u64()?;
        if rows > MAX_PAYLOAD {
            return Err(corrupt(self.artifact, "implausible row count"));
        }
        let rows = rows as usize;
        // Flat columns: `arity` runs of `rows` ids each; transpose back into
        // row tuples through the file dictionary.
        let mut cols: Vec<Vec<&Value>> = Vec::with_capacity(arity);
        for _ in 0..arity {
            let mut col = Vec::with_capacity(rows);
            for _ in 0..rows {
                col.push(self.id(dict)?);
            }
            cols.push(col);
        }
        rel.reserve(rows);
        for r in 0..rows {
            rel.push_unchecked(Row::new(cols.iter().map(|col| col[r].clone()).collect()));
        }
        rel.dedup();
        Ok(rel)
    }

    fn database_v1(&mut self) -> Result<Database> {
        let count = self.u32()?;
        let mut db = Database::new();
        for _ in 0..count {
            db.add(self.relation_v1()?)?;
        }
        Ok(db)
    }

    fn database_v2(&mut self, dict: &[Value]) -> Result<Database> {
        let count = self.u32()?;
        let mut db = Database::new();
        for _ in 0..count {
            db.add(self.relation_v2(dict)?)?;
        }
        Ok(db)
    }

    fn batch_v1(&mut self) -> Result<DeltaBatch> {
        let relations = self.u32()?;
        let mut batch = DeltaBatch::new();
        for _ in 0..relations {
            let name = self.str()?;
            let ops = self.u32()?;
            for _ in 0..ops {
                let sign = match self.u8()? {
                    b'+' => 1,
                    b'-' => -1,
                    tag => return Err(corrupt(self.artifact, format!("unknown op sign {tag:#x}"))),
                };
                let row = self.row()?;
                batch.push(&name, row, sign);
            }
        }
        Ok(batch)
    }

    fn batch_v2(&mut self, dict: &[Value]) -> Result<DeltaBatch> {
        let relations = self.u32()?;
        let mut batch = DeltaBatch::new();
        for _ in 0..relations {
            let name = self.str()?;
            let ops = self.u32()?;
            for _ in 0..ops {
                let sign = match self.u8()? {
                    b'+' => 1,
                    b'-' => -1,
                    tag => return Err(corrupt(self.artifact, format!("unknown op sign {tag:#x}"))),
                };
                let arity = self.u16()? as usize;
                let mut values = Vec::with_capacity(arity);
                for _ in 0..arity {
                    values.push(self.id(dict)?.clone());
                }
                batch.push(&name, Row::new(values), sign);
            }
        }
        Ok(batch)
    }

    fn batch_at(&mut self, version: u8, dict: &[Value]) -> Result<DeltaBatch> {
        match version {
            1 => self.batch_v1(),
            _ => self.batch_v2(dict),
        }
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(corrupt(
                self.artifact,
                format!("{} trailing payload bytes", self.buf.len() - self.pos),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// File-level framing
// ---------------------------------------------------------------------------

/// Write `magic · version · len · payload · crc32(payload)` to `w`.
fn write_framed_at<W: Write>(
    w: &mut W,
    magic: &[u8; 8],
    version: u8,
    payload: &[u8],
) -> Result<()> {
    w.write_all(magic)?;
    w.write_all(&[version])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

fn write_framed<W: Write>(w: &mut W, magic: &[u8; 8], payload: &[u8]) -> Result<()> {
    write_framed_at(w, magic, FORMAT_VERSION, payload)
}

/// Read and validate one framed payload; the inverse of [`write_framed`].
/// Accepts every version in `MIN_SUPPORTED_VERSION..=FORMAT_VERSION` and
/// returns the version found alongside the payload so callers can dispatch.
fn read_framed<R: Read>(
    r: &mut R,
    magic: &[u8; 8],
    artifact: &'static str,
) -> Result<(u8, Vec<u8>)> {
    let mut head = [0u8; 8];
    read_exact(r, &mut head, artifact)?;
    if &head != magic {
        return Err(corrupt(artifact, "bad magic"));
    }
    let mut version = [0u8; 1];
    read_exact(r, &mut version, artifact)?;
    let version = version[0];
    if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(StorageError::UnsupportedVersion {
            artifact,
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let mut len = [0u8; 8];
    read_exact(r, &mut len, artifact)?;
    let len = u64::from_le_bytes(len);
    if len > MAX_PAYLOAD {
        return Err(corrupt(artifact, "implausible payload length"));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload, artifact)?;
    let mut crc = [0u8; 4];
    read_exact(r, &mut crc, artifact)?;
    if u32::from_le_bytes(crc) != crc32(&payload) {
        return Err(corrupt(artifact, "checksum mismatch"));
    }
    Ok((version, payload))
}

/// `read_exact` with truncation mapped to a typed corruption error.
fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], artifact: &'static str) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            corrupt(artifact, "truncated input")
        } else {
            StorageError::Io(e.to_string())
        }
    })
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Serialize a database snapshot taken at `epoch` to `w`.
///
/// The v2 payload is the flat interned layout: one file-local dictionary of
/// every distinct value, then each relation as `arity` dense `u32` id
/// columns.  Nothing in `db` is cloned beyond the dictionary's distinct
/// values, so serializing costs two traversals of the state plus the
/// serialized bytes — which repeat no value twice.
pub fn write_checkpoint<W: Write>(w: &mut W, epoch: Epoch, db: &Database) -> Result<()> {
    let mut dict = FileDict::default();
    for (_, rel) in db.iter() {
        for row in rel.iter() {
            dict.absorb_row(row);
        }
    }
    let mut enc = Enc::new();
    enc.u64(epoch);
    enc.dict(&dict);
    enc.database_v2(db, &dict);
    write_framed(w, CHECKPOINT_MAGIC, &enc.buf)
}

/// Read back a checkpoint written by [`write_checkpoint`] — current format or
/// one version back.
pub fn read_checkpoint<R: Read>(r: &mut R) -> Result<(Epoch, Database)> {
    let (version, payload) = read_framed(r, CHECKPOINT_MAGIC, "checkpoint")?;
    let mut dec = Dec::new(&payload, "checkpoint");
    let epoch = dec.u64()?;
    let db = match version {
        1 => dec.database_v1()?,
        _ => {
            let dict = dec.dict()?;
            dec.database_v2(&dict)?
        }
    };
    dec.finish()?;
    Ok((epoch, db))
}

// ---------------------------------------------------------------------------
// Whole-log serialization
// ---------------------------------------------------------------------------

impl UpdateLog {
    /// Serialize the whole log — retained batches, lifetime counters, base
    /// epoch and retention limit — as one framed, checksummed payload, with
    /// every batch row encoded against one file-local dictionary.
    pub fn to_writer<W: Write>(&self, w: &mut W) -> Result<()> {
        let mut dict = FileDict::default();
        for batch in &self.batches {
            dict.absorb_batch(batch);
        }
        let mut enc = Enc::new();
        enc.u64(self.base_epoch);
        enc.u64(self.limit.map(|l| l as u64).unwrap_or(u64::MAX));
        enc.u8(self.truncated as u8);
        enc.u64(self.recorded as u64);
        enc.u64(self.total.inserted as u64);
        enc.u64(self.total.deleted as u64);
        enc.dict(&dict);
        enc.u32(self.batches.len() as u32);
        for batch in &self.batches {
            enc.batch_v2(batch, &dict);
        }
        write_framed(w, LOG_MAGIC, &enc.buf)
    }

    /// Read back a log written by [`UpdateLog::to_writer`] (current format or
    /// one version back).  Corruption — including truncated input — yields a
    /// typed [`StorageError`], never a panic.
    pub fn from_reader<R: Read>(r: &mut R) -> Result<UpdateLog> {
        const ARTIFACT: &str = "update log";
        let (version, payload) = read_framed(r, LOG_MAGIC, ARTIFACT)?;
        let mut dec = Dec::new(&payload, ARTIFACT);
        let base_epoch = dec.u64()?;
        let limit = match dec.u64()? {
            u64::MAX => None,
            l => Some(l as usize),
        };
        let truncated = dec.u8()? != 0;
        let recorded = dec.u64()? as usize;
        let total = DeltaEffect {
            inserted: dec.u64()? as usize,
            deleted: dec.u64()? as usize,
        };
        let dict = if version >= 2 {
            dec.dict()?
        } else {
            Vec::new()
        };
        let count = dec.u32()?;
        let mut batches = std::collections::VecDeque::with_capacity(count as usize);
        for _ in 0..count {
            batches.push_back(dec.batch_at(version, &dict)?);
        }
        dec.finish()?;
        Ok(UpdateLog {
            batches,
            total,
            recorded,
            limit,
            truncated,
            base_epoch,
        })
    }
}

// ---------------------------------------------------------------------------
// WAL frames
// ---------------------------------------------------------------------------

/// Write a WAL file header declaring `base_epoch`: the epoch of the state the
/// first appended frame applies to.  The header's framing version is the
/// version of every subsequent batch frame in the file.
pub fn write_wal_header<W: Write>(w: &mut W, base_epoch: Epoch) -> Result<()> {
    write_framed(w, WAL_MAGIC, &base_epoch.to_le_bytes())
}

/// Read back a WAL header written by [`write_wal_header`], returning the base
/// epoch and the file's format version — pass the version to
/// [`read_batch_frame_at`] so frames decode in the layout the writer used.
pub fn read_wal_header_versioned<R: Read>(r: &mut R) -> Result<(Epoch, u8)> {
    let (version, payload) = read_framed(r, WAL_MAGIC, "write-ahead log")?;
    let bytes: [u8; 8] = payload
        .as_slice()
        .try_into()
        .map_err(|_| corrupt("write-ahead log", "header payload is not 8 bytes"))?;
    Ok((u64::from_le_bytes(bytes), version))
}

/// [`read_wal_header_versioned`] without the version (current-format files).
pub fn read_wal_header<R: Read>(r: &mut R) -> Result<Epoch> {
    Ok(read_wal_header_versioned(r)?.0)
}

/// Append one self-checking batch frame (`len · crc · payload`) to `w`,
/// returning the number of bytes written.  The payload carries a frame-local
/// dictionary followed by the batch as id rows, so every frame remains
/// independently replayable.
pub fn write_batch_frame<W: Write>(w: &mut W, batch: &DeltaBatch) -> Result<usize> {
    let mut dict = FileDict::default();
    dict.absorb_batch(batch);
    let mut enc = Enc::new();
    enc.dict(&dict);
    enc.batch_v2(batch, &dict);
    w.write_all(&(enc.buf.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(&enc.buf).to_le_bytes())?;
    w.write_all(&enc.buf)?;
    Ok(8 + enc.buf.len())
}

/// Read the next batch frame from `r` in the layout of WAL file format
/// `version` (from [`read_wal_header_versioned`]).
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary).  A frame cut short by a crash, or one whose checksum does not
/// match, is a [`StorageError::Corrupt`] — WAL readers treat the first such
/// error as the torn tail of an interrupted append and stop there.
pub fn read_batch_frame_at<R: Read>(r: &mut R, version: u8) -> Result<Option<DeltaBatch>> {
    const ARTIFACT: &str = "write-ahead log";
    // Read the length word by hand: zero bytes is a clean EOF, a partial word
    // is a torn frame.
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(corrupt(ARTIFACT, "torn frame header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StorageError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(corrupt(ARTIFACT, "implausible frame length"));
    }
    let mut crc = [0u8; 4];
    read_exact(r, &mut crc, ARTIFACT)?;
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload, ARTIFACT)?;
    if u32::from_le_bytes(crc) != crc32(&payload) {
        return Err(corrupt(ARTIFACT, "frame checksum mismatch"));
    }
    let mut dec = Dec::new(&payload, ARTIFACT);
    let batch = if version >= 2 {
        let dict = dec.dict()?;
        dec.batch_v2(&dict)?
    } else {
        dec.batch_v1()?
    };
    dec.finish()?;
    Ok(Some(batch))
}

/// [`read_batch_frame_at`] for current-format WAL files.
pub fn read_batch_frame<R: Read>(r: &mut R) -> Result<Option<DeltaBatch>> {
    read_batch_frame_at(r, FORMAT_VERSION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 1]],
        ))
        .unwrap();
        let mut named = Relation::new("Named", Schema::from_names(["id", "label"]));
        named
            .insert(Row::new(vec![Value::Int(1), Value::str("alpha")]))
            .unwrap();
        named
            .insert(Row::new(vec![Value::Int(2), Value::Null]))
            .unwrap();
        db.add(named).unwrap();
        db
    }

    fn sample_batch(step: i64) -> DeltaBatch {
        let mut b = DeltaBatch::new();
        b.insert("Graph", int_row([40 + step, step]));
        b.delete("Graph", int_row([1, 2]));
        b.push(
            "Named",
            Row::new(vec![Value::Int(9 + step), Value::str("new")]),
            1,
        );
        b
    }

    /// A v1 checkpoint exactly as the previous release wrote it.
    fn v1_checkpoint(epoch: Epoch, db: &Database) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u64(epoch);
        enc.u32(db.relation_count() as u32);
        for (_, rel) in db.iter() {
            enc.relation_v1(rel);
        }
        let mut buf = Vec::new();
        write_framed_at(&mut buf, CHECKPOINT_MAGIC, 1, &enc.buf).unwrap();
        buf
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoint_round_trips() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, 17, &db).unwrap();
        assert_eq!(buf[8], FORMAT_VERSION, "writers emit the current version");
        let (epoch, back) = read_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(epoch, 17);
        assert_eq!(back.relation_names(), db.relation_names());
        for name in db.relation_names() {
            assert_eq!(
                back.get(&name).unwrap().sorted_rows(),
                db.get(&name).unwrap().sorted_rows()
            );
        }
    }

    #[test]
    fn dictionary_deduplicates_repeated_values() {
        // 200 distinct rows over 20 distinct values: the v2 payload must stay
        // far below the inline-value encoding (each Int costs 9 bytes inline,
        // 4 as id, and each distinct value is serialized exactly once).
        let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i / 10, i % 10]).collect();
        let mut db = Database::new();
        db.add(Relation::from_int_rows("Dense", &["a", "b"], rows))
            .unwrap();
        let mut v2 = Vec::new();
        write_checkpoint(&mut v2, 0, &db).unwrap();
        let mut enc = Enc::new();
        enc.u64(0);
        enc.u32(1);
        enc.relation_v1(db.get("Dense").unwrap());
        assert!(
            v2.len() * 2 < enc.buf.len(),
            "flat id columns ({} bytes) must at least halve the inline encoding ({} bytes)",
            v2.len(),
            enc.buf.len()
        );
        let (_, back) = read_checkpoint(&mut v2.as_slice()).unwrap();
        assert_eq!(
            back.get("Dense").unwrap().sorted_rows(),
            db.get("Dense").unwrap().sorted_rows()
        );
    }

    #[test]
    fn previous_version_checkpoints_still_read() {
        let db = sample_db();
        let v1 = v1_checkpoint(23, &db);
        assert_eq!(v1[8], 1);
        let (epoch, back) = read_checkpoint(&mut v1.as_slice()).unwrap();
        assert_eq!(epoch, 23);
        assert_eq!(back.relation_names(), db.relation_names());
        for name in db.relation_names() {
            assert_eq!(
                back.get(&name).unwrap().sorted_rows(),
                db.get(&name).unwrap().sorted_rows()
            );
        }
    }

    #[test]
    fn corrupt_dictionary_ids_are_typed_errors() {
        // Hand-build a v2 payload whose row ids point past the dictionary.
        let mut enc = Enc::new();
        enc.u64(0); // epoch
        let mut dict = FileDict::default();
        dict.intern(&Value::Int(1));
        enc.dict(&dict); // 1 entry → only id 0 is valid
        enc.u32(1); // one relation
        enc.str("R");
        enc.u16(1);
        enc.str("a");
        enc.u64(1); // one row
        enc.u32(5); // id 5 out of range
        let mut buf = Vec::new();
        write_framed(&mut buf, CHECKPOINT_MAGIC, &enc.buf).unwrap();
        let err = read_checkpoint(&mut buf.as_slice()).unwrap_err();
        assert!(
            matches!(&err, StorageError::Corrupt { detail, .. } if detail.contains("dictionary id")),
            "expected a dictionary-range corruption, got {err:?}"
        );
    }

    #[test]
    fn update_log_round_trips_with_counters() {
        let mut db = sample_db();
        let mut log = UpdateLog::with_limit(8);
        for step in 0..5 {
            let batch = sample_batch(step);
            let effect = db.apply_batch(&batch).unwrap().effect;
            log.record(batch, effect);
        }
        log.truncate_before(2);
        let mut buf = Vec::new();
        log.to_writer(&mut buf).unwrap();
        let back = UpdateLog::from_reader(&mut buf.as_slice()).unwrap();
        assert_eq!(back.base_epoch(), log.base_epoch());
        assert_eq!(back.len(), log.len());
        assert_eq!(back.recorded(), log.recorded());
        assert_eq!(back.is_truncated(), log.is_truncated());
        assert_eq!(back.total_effect(), log.total_effect());
        let orig: Vec<_> = log.batches().cloned().collect();
        let round: Vec<_> = back.batches().cloned().collect();
        assert_eq!(orig, round);
    }

    #[test]
    fn previous_version_update_logs_still_read() {
        let mut log = UpdateLog::new();
        log.record(sample_batch(0), DeltaEffect::default());
        log.record(sample_batch(1), DeltaEffect::default());
        // Encode the log body exactly as v1 did: batches inline, no dict.
        let mut enc = Enc::new();
        enc.u64(log.base_epoch);
        enc.u64(u64::MAX);
        enc.u8(0);
        enc.u64(log.recorded as u64);
        enc.u64(log.total.inserted as u64);
        enc.u64(log.total.deleted as u64);
        enc.u32(log.batches.len() as u32);
        for batch in &log.batches {
            enc.batch_v1(batch);
        }
        let mut buf = Vec::new();
        write_framed_at(&mut buf, LOG_MAGIC, 1, &enc.buf).unwrap();
        let back = UpdateLog::from_reader(&mut buf.as_slice()).unwrap();
        let orig: Vec<_> = log.batches().cloned().collect();
        let round: Vec<_> = back.batches().cloned().collect();
        assert_eq!(orig, round);
    }

    #[test]
    fn wal_frames_round_trip_and_stop_cleanly() {
        let mut buf = Vec::new();
        write_wal_header(&mut buf, 41).unwrap();
        for step in 0..3 {
            write_batch_frame(&mut buf, &sample_batch(step)).unwrap();
        }
        let mut r = buf.as_slice();
        let (epoch, version) = read_wal_header_versioned(&mut r).unwrap();
        assert_eq!((epoch, version), (41, FORMAT_VERSION));
        let mut batches = Vec::new();
        while let Some(batch) = read_batch_frame_at(&mut r, version).unwrap() {
            batches.push(batch);
        }
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2], sample_batch(2));
    }

    #[test]
    fn previous_version_wal_files_still_replay() {
        // A v1 WAL file: v1-framed header, frames with inline-value payloads.
        let mut buf = Vec::new();
        write_framed_at(&mut buf, WAL_MAGIC, 1, &7u64.to_le_bytes()).unwrap();
        for step in 0..2 {
            let mut enc = Enc::new();
            enc.batch_v1(&sample_batch(step));
            buf.extend_from_slice(&(enc.buf.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(&enc.buf).to_le_bytes());
            buf.extend_from_slice(&enc.buf);
        }
        let mut r = buf.as_slice();
        let (epoch, version) = read_wal_header_versioned(&mut r).unwrap();
        assert_eq!((epoch, version), (7, 1));
        let mut batches = Vec::new();
        while let Some(batch) = read_batch_frame_at(&mut r, version).unwrap() {
            batches.push(batch);
        }
        assert_eq!(batches, vec![sample_batch(0), sample_batch(1)]);
    }

    #[test]
    fn torn_wal_tail_is_a_typed_error() {
        let mut buf = Vec::new();
        write_wal_header(&mut buf, 0).unwrap();
        let header_len = buf.len();
        write_batch_frame(&mut buf, &sample_batch(0)).unwrap();
        let full = buf.len();
        write_batch_frame(&mut buf, &sample_batch(1)).unwrap();
        // Cut the second frame mid-payload, as a crash during append would.
        for cut in [full + 2, full + 6, full + 9, buf.len() - 1] {
            let torn = &buf[..cut];
            let mut r = torn;
            read_wal_header(&mut r).unwrap();
            assert_eq!(
                read_batch_frame(&mut r).unwrap(),
                Some(sample_batch(0)),
                "intact first frame must still read"
            );
            assert!(matches!(
                read_batch_frame(&mut r),
                Err(StorageError::Corrupt { .. })
            ));
        }
        // Truncating inside the header is also typed, not a panic.
        let mut r = &buf[..header_len - 3];
        assert!(matches!(
            read_wal_header(&mut r),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn corrupted_and_truncated_checkpoints_are_typed_errors() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, 3, &db).unwrap();

        // Truncation at every prefix length: typed error, no panic.
        for cut in 0..buf.len() {
            let err = read_checkpoint(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt { .. }),
                "cut at {cut} gave {err:?}"
            );
        }

        // A flipped payload byte fails the checksum.
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            read_checkpoint(&mut flipped.as_slice()),
            Err(StorageError::Corrupt { .. })
        ));

        // Wrong magic and version skew (future or pre-support) are
        // distinguished from corruption.
        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            read_checkpoint(&mut wrong_magic.as_slice()),
            Err(StorageError::Corrupt { .. })
        ));
        let mut future = buf.clone();
        future[8] = FORMAT_VERSION + 1;
        assert!(matches!(
            read_checkpoint(&mut future.as_slice()),
            Err(StorageError::UnsupportedVersion { found, supported, .. })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
        let mut ancient = buf.clone();
        ancient[8] = 0;
        assert!(matches!(
            read_checkpoint(&mut ancient.as_slice()),
            Err(StorageError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn corrupted_log_is_a_typed_error() {
        let mut log = UpdateLog::new();
        log.record(sample_batch(0), DeltaEffect::default());
        let mut buf = Vec::new();
        log.to_writer(&mut buf).unwrap();
        for cut in [0, 5, 9, 17, buf.len() - 1] {
            assert!(matches!(
                UpdateLog::from_reader(&mut &buf[..cut]),
                Err(StorageError::Corrupt { .. })
            ));
        }
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(
            UpdateLog::from_reader(&mut buf.as_slice()),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn approx_bytes_tracks_batch_contents() {
        let empty = DeltaBatch::new();
        let loaded = sample_batch(0);
        assert!(loaded.approx_bytes() > empty.approx_bytes());
        let mut log = UpdateLog::new();
        assert_eq!(log.approx_bytes(), 0);
        log.record(loaded.clone(), DeltaEffect::default());
        log.record(loaded.clone(), DeltaEffect::default());
        assert_eq!(log.approx_bytes(), 2 * loaded.approx_bytes());
    }
}
