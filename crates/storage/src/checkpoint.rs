//! Durable on-disk serialization for checkpoints and update logs.
//!
//! Every artifact shares one framing discipline: an 8-byte magic, a version
//! byte, a little-endian length, the payload, and a CRC-32 (IEEE) over the
//! payload.  Readers validate magic, version, and checksum before parsing a
//! single payload byte, and every failure — truncation included — surfaces as
//! a typed [`StorageError`], never a panic.
//!
//! Three artifact kinds are defined here:
//!
//! * **Checkpoint** ([`write_checkpoint`] / [`read_checkpoint`]) — one
//!   [`Database`] snapshot tagged with the epoch it was taken at.  This is the
//!   serialized form of an engine's `LogCheckpoint` and the base state of
//!   crash recovery.
//! * **Update log** ([`UpdateLog::to_writer`] / [`UpdateLog::from_reader`]) —
//!   a whole retained log (batches + counters + base epoch) in one framed
//!   payload.
//! * **WAL frames** ([`write_wal_header`], [`write_batch_frame`] /
//!   [`read_batch_frame`]) — an append-friendly stream of individually
//!   CRC-framed [`DeltaBatch`]es for write-ahead logging.  Each frame is
//!   self-checking, so a reader can replay a crashed writer's log up to the
//!   first torn frame and ignore the tail.
//!
//! The recovery invariant the formats exist to uphold:
//! `checkpoint ⊕ retained log = current state`.

use crate::database::Database;
use crate::delta::{DeltaBatch, DeltaEffect, UpdateLog};
use crate::relation::Relation;
use crate::row::Row;
use crate::schema::Schema;
use crate::shared::Epoch;
use crate::value::Value;
use crate::{Result, StorageError};
use std::io::{Read, Write};
use std::sync::OnceLock;

/// Magic prefix of a serialized checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"DCQSNAP\0";
/// Magic prefix of a serialized update-log file.
pub const LOG_MAGIC: &[u8; 8] = b"DCQLOG\0\0";
/// Magic prefix of a write-ahead-log file.
pub const WAL_MAGIC: &[u8; 8] = b"DCQWAL\0\0";
/// Newest serialization format version this build reads and writes.
pub const FORMAT_VERSION: u8 = 1;

/// Hard ceiling on any framed payload (64 GiB); a declared length beyond it
/// is treated as corruption instead of an allocation attempt.
const MAX_PAYLOAD: u64 = 1 << 36;
/// Ceiling on a single WAL batch frame (1 GiB).
const MAX_FRAME: u32 = 1 << 30;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0u32;
        while i < 256 {
            let mut crc = i;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i as usize] = crc;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Payload encoding / decoding primitives
// ---------------------------------------------------------------------------

fn corrupt(artifact: &'static str, detail: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        artifact,
        detail: detail.into(),
    }
}

/// Append-only payload encoder.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.u8(0);
                self.i64(*i);
            }
            Value::Str(s) => {
                self.u8(1);
                self.str(s);
            }
            Value::Null => self.u8(2),
        }
    }

    fn row(&mut self, row: &Row) {
        self.u16(row.arity() as u16);
        for v in row.iter() {
            self.value(v);
        }
    }

    fn relation(&mut self, rel: &Relation) {
        self.str(rel.name());
        self.u16(rel.schema().arity() as u16);
        for attr in rel.schema().attrs() {
            self.str(attr.name());
        }
        self.u64(rel.len() as u64);
        for row in rel.iter() {
            self.row(row);
        }
    }

    fn database(&mut self, db: &Database) {
        self.u32(db.relation_count() as u32);
        for (_, rel) in db.iter() {
            self.relation(rel);
        }
    }

    fn batch(&mut self, batch: &DeltaBatch) {
        self.u32(batch.relations().count() as u32);
        for (name, ops) in batch.iter() {
            self.str(name);
            self.u32(ops.len() as u32);
            for (row, sign) in ops {
                self.u8(if *sign >= 0 { b'+' } else { b'-' });
                self.row(row);
            }
        }
    }
}

/// Cursor-based payload decoder; every read is bounds-checked and a short
/// buffer is reported as corruption of `artifact`.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    artifact: &'static str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], artifact: &'static str) -> Self {
        Dec {
            buf,
            pos: 0,
            artifact,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| corrupt(self.artifact, "payload ends mid-field"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(self.artifact, "string field is not valid UTF-8"))
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::str(self.str()?)),
            2 => Ok(Value::Null),
            tag => Err(corrupt(self.artifact, format!("unknown value tag {tag}"))),
        }
    }

    fn row(&mut self) -> Result<Row> {
        let arity = self.u16()? as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Ok(Row::new(values))
    }

    fn relation(&mut self) -> Result<Relation> {
        let name = self.str()?;
        let arity = self.u16()? as usize;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            attrs.push(self.str()?);
        }
        let schema = Schema::from_names(attrs);
        let mut rel = Relation::new(name, schema);
        let rows = self.u64()?;
        if rows > MAX_PAYLOAD {
            return Err(corrupt(self.artifact, "implausible row count"));
        }
        for _ in 0..rows {
            let row = self.row()?;
            if row.arity() != arity {
                return Err(corrupt(self.artifact, "row arity disagrees with schema"));
            }
            rel.push_unchecked(row);
        }
        // A checkpointed store holds set-semantics relations; writers only
        // emit deduplicated stores, but dedup anyway so a hand-edited file
        // cannot smuggle duplicates past the invariant.
        rel.dedup();
        Ok(rel)
    }

    fn database(&mut self) -> Result<Database> {
        let count = self.u32()?;
        let mut db = Database::new();
        for _ in 0..count {
            db.add(self.relation()?)?;
        }
        Ok(db)
    }

    fn batch(&mut self) -> Result<DeltaBatch> {
        let relations = self.u32()?;
        let mut batch = DeltaBatch::new();
        for _ in 0..relations {
            let name = self.str()?;
            let ops = self.u32()?;
            for _ in 0..ops {
                let sign = match self.u8()? {
                    b'+' => 1,
                    b'-' => -1,
                    tag => return Err(corrupt(self.artifact, format!("unknown op sign {tag:#x}"))),
                };
                let row = self.row()?;
                batch.push(&name, row, sign);
            }
        }
        Ok(batch)
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(corrupt(
                self.artifact,
                format!("{} trailing payload bytes", self.buf.len() - self.pos),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// File-level framing
// ---------------------------------------------------------------------------

/// Write `magic · version · len · payload · crc32(payload)` to `w`.
fn write_framed<W: Write>(w: &mut W, magic: &[u8; 8], payload: &[u8]) -> Result<()> {
    w.write_all(magic)?;
    w.write_all(&[FORMAT_VERSION])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Read and validate one framed payload; the inverse of [`write_framed`].
fn read_framed<R: Read>(r: &mut R, magic: &[u8; 8], artifact: &'static str) -> Result<Vec<u8>> {
    let mut head = [0u8; 8];
    read_exact(r, &mut head, artifact)?;
    if &head != magic {
        return Err(corrupt(artifact, "bad magic"));
    }
    let mut version = [0u8; 1];
    read_exact(r, &mut version, artifact)?;
    if version[0] != FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            artifact,
            found: version[0],
            supported: FORMAT_VERSION,
        });
    }
    let mut len = [0u8; 8];
    read_exact(r, &mut len, artifact)?;
    let len = u64::from_le_bytes(len);
    if len > MAX_PAYLOAD {
        return Err(corrupt(artifact, "implausible payload length"));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload, artifact)?;
    let mut crc = [0u8; 4];
    read_exact(r, &mut crc, artifact)?;
    if u32::from_le_bytes(crc) != crc32(&payload) {
        return Err(corrupt(artifact, "checksum mismatch"));
    }
    Ok(payload)
}

/// `read_exact` with truncation mapped to a typed corruption error.
fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], artifact: &'static str) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            corrupt(artifact, "truncated input")
        } else {
            StorageError::Io(e.to_string())
        }
    })
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Serialize a database snapshot taken at `epoch` to `w`.
///
/// This streams the relations straight out of `db` — nothing is cloned, so
/// serializing a checkpoint costs one traversal of the state plus the
/// serialized bytes.
pub fn write_checkpoint<W: Write>(w: &mut W, epoch: Epoch, db: &Database) -> Result<()> {
    let mut enc = Enc::new();
    enc.u64(epoch);
    enc.database(db);
    write_framed(w, CHECKPOINT_MAGIC, &enc.buf)
}

/// Read back a checkpoint written by [`write_checkpoint`].
pub fn read_checkpoint<R: Read>(r: &mut R) -> Result<(Epoch, Database)> {
    let payload = read_framed(r, CHECKPOINT_MAGIC, "checkpoint")?;
    let mut dec = Dec::new(&payload, "checkpoint");
    let epoch = dec.u64()?;
    let db = dec.database()?;
    dec.finish()?;
    Ok((epoch, db))
}

// ---------------------------------------------------------------------------
// Whole-log serialization
// ---------------------------------------------------------------------------

impl UpdateLog {
    /// Serialize the whole log — retained batches, lifetime counters, base
    /// epoch and retention limit — as one framed, checksummed payload.
    pub fn to_writer<W: Write>(&self, w: &mut W) -> Result<()> {
        let mut enc = Enc::new();
        enc.u64(self.base_epoch);
        enc.u64(self.limit.map(|l| l as u64).unwrap_or(u64::MAX));
        enc.u8(self.truncated as u8);
        enc.u64(self.recorded as u64);
        enc.u64(self.total.inserted as u64);
        enc.u64(self.total.deleted as u64);
        enc.u32(self.batches.len() as u32);
        for batch in &self.batches {
            enc.batch(batch);
        }
        write_framed(w, LOG_MAGIC, &enc.buf)
    }

    /// Read back a log written by [`UpdateLog::to_writer`].  Corruption —
    /// including truncated input — yields a typed [`StorageError`], never a
    /// panic.
    pub fn from_reader<R: Read>(r: &mut R) -> Result<UpdateLog> {
        const ARTIFACT: &str = "update log";
        let payload = read_framed(r, LOG_MAGIC, ARTIFACT)?;
        let mut dec = Dec::new(&payload, ARTIFACT);
        let base_epoch = dec.u64()?;
        let limit = match dec.u64()? {
            u64::MAX => None,
            l => Some(l as usize),
        };
        let truncated = dec.u8()? != 0;
        let recorded = dec.u64()? as usize;
        let total = DeltaEffect {
            inserted: dec.u64()? as usize,
            deleted: dec.u64()? as usize,
        };
        let count = dec.u32()?;
        let mut batches = std::collections::VecDeque::with_capacity(count as usize);
        for _ in 0..count {
            batches.push_back(dec.batch()?);
        }
        dec.finish()?;
        Ok(UpdateLog {
            batches,
            total,
            recorded,
            limit,
            truncated,
            base_epoch,
        })
    }
}

// ---------------------------------------------------------------------------
// WAL frames
// ---------------------------------------------------------------------------

/// Write a WAL file header declaring `base_epoch`: the epoch of the state the
/// first appended frame applies to.
pub fn write_wal_header<W: Write>(w: &mut W, base_epoch: Epoch) -> Result<()> {
    write_framed(w, WAL_MAGIC, &base_epoch.to_le_bytes())
}

/// Read back a WAL header written by [`write_wal_header`].
pub fn read_wal_header<R: Read>(r: &mut R) -> Result<Epoch> {
    let payload = read_framed(r, WAL_MAGIC, "write-ahead log")?;
    let bytes: [u8; 8] = payload
        .as_slice()
        .try_into()
        .map_err(|_| corrupt("write-ahead log", "header payload is not 8 bytes"))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Append one self-checking batch frame (`len · crc · payload`) to `w`,
/// returning the number of bytes written.
pub fn write_batch_frame<W: Write>(w: &mut W, batch: &DeltaBatch) -> Result<usize> {
    let mut enc = Enc::new();
    enc.batch(batch);
    w.write_all(&(enc.buf.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(&enc.buf).to_le_bytes())?;
    w.write_all(&enc.buf)?;
    Ok(8 + enc.buf.len())
}

/// Read the next batch frame from `r`.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary).  A frame cut short by a crash, or one whose checksum does not
/// match, is a [`StorageError::Corrupt`] — WAL readers treat the first such
/// error as the torn tail of an interrupted append and stop there.
pub fn read_batch_frame<R: Read>(r: &mut R) -> Result<Option<DeltaBatch>> {
    const ARTIFACT: &str = "write-ahead log";
    // Read the length word by hand: zero bytes is a clean EOF, a partial word
    // is a torn frame.
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(corrupt(ARTIFACT, "torn frame header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StorageError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(corrupt(ARTIFACT, "implausible frame length"));
    }
    let mut crc = [0u8; 4];
    read_exact(r, &mut crc, ARTIFACT)?;
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload, ARTIFACT)?;
    if u32::from_le_bytes(crc) != crc32(&payload) {
        return Err(corrupt(ARTIFACT, "frame checksum mismatch"));
    }
    let mut dec = Dec::new(&payload, ARTIFACT);
    let batch = dec.batch()?;
    dec.finish()?;
    Ok(Some(batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 1]],
        ))
        .unwrap();
        let mut named = Relation::new("Named", Schema::from_names(["id", "label"]));
        named
            .insert(Row::new(vec![Value::Int(1), Value::str("alpha")]))
            .unwrap();
        named
            .insert(Row::new(vec![Value::Int(2), Value::Null]))
            .unwrap();
        db.add(named).unwrap();
        db
    }

    fn sample_batch(step: i64) -> DeltaBatch {
        let mut b = DeltaBatch::new();
        b.insert("Graph", int_row([40 + step, step]));
        b.delete("Graph", int_row([1, 2]));
        b.push(
            "Named",
            Row::new(vec![Value::Int(9 + step), Value::str("new")]),
            1,
        );
        b
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoint_round_trips() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, 17, &db).unwrap();
        let (epoch, back) = read_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(epoch, 17);
        assert_eq!(back.relation_names(), db.relation_names());
        for name in db.relation_names() {
            assert_eq!(
                back.get(&name).unwrap().sorted_rows(),
                db.get(&name).unwrap().sorted_rows()
            );
        }
    }

    #[test]
    fn update_log_round_trips_with_counters() {
        let mut db = sample_db();
        let mut log = UpdateLog::with_limit(8);
        for step in 0..5 {
            let batch = sample_batch(step);
            let effect = db.apply_batch(&batch).unwrap().effect;
            log.record(batch, effect);
        }
        log.truncate_before(2);
        let mut buf = Vec::new();
        log.to_writer(&mut buf).unwrap();
        let back = UpdateLog::from_reader(&mut buf.as_slice()).unwrap();
        assert_eq!(back.base_epoch(), log.base_epoch());
        assert_eq!(back.len(), log.len());
        assert_eq!(back.recorded(), log.recorded());
        assert_eq!(back.is_truncated(), log.is_truncated());
        assert_eq!(back.total_effect(), log.total_effect());
        let orig: Vec<_> = log.batches().cloned().collect();
        let round: Vec<_> = back.batches().cloned().collect();
        assert_eq!(orig, round);
    }

    #[test]
    fn wal_frames_round_trip_and_stop_cleanly() {
        let mut buf = Vec::new();
        write_wal_header(&mut buf, 41).unwrap();
        for step in 0..3 {
            write_batch_frame(&mut buf, &sample_batch(step)).unwrap();
        }
        let mut r = buf.as_slice();
        assert_eq!(read_wal_header(&mut r).unwrap(), 41);
        let mut batches = Vec::new();
        while let Some(batch) = read_batch_frame(&mut r).unwrap() {
            batches.push(batch);
        }
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2], sample_batch(2));
    }

    #[test]
    fn torn_wal_tail_is_a_typed_error() {
        let mut buf = Vec::new();
        write_wal_header(&mut buf, 0).unwrap();
        let header_len = buf.len();
        write_batch_frame(&mut buf, &sample_batch(0)).unwrap();
        let full = buf.len();
        write_batch_frame(&mut buf, &sample_batch(1)).unwrap();
        // Cut the second frame mid-payload, as a crash during append would.
        for cut in [full + 2, full + 6, full + 9, buf.len() - 1] {
            let torn = &buf[..cut];
            let mut r = torn;
            read_wal_header(&mut r).unwrap();
            assert_eq!(
                read_batch_frame(&mut r).unwrap(),
                Some(sample_batch(0)),
                "intact first frame must still read"
            );
            assert!(matches!(
                read_batch_frame(&mut r),
                Err(StorageError::Corrupt { .. })
            ));
        }
        // Truncating inside the header is also typed, not a panic.
        let mut r = &buf[..header_len - 3];
        assert!(matches!(
            read_wal_header(&mut r),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn corrupted_and_truncated_checkpoints_are_typed_errors() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, 3, &db).unwrap();

        // Truncation at every prefix length: typed error, no panic.
        for cut in 0..buf.len() {
            let err = read_checkpoint(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt { .. }),
                "cut at {cut} gave {err:?}"
            );
        }

        // A flipped payload byte fails the checksum.
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            read_checkpoint(&mut flipped.as_slice()),
            Err(StorageError::Corrupt { .. })
        ));

        // Wrong magic and unsupported version are distinguished.
        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            read_checkpoint(&mut wrong_magic.as_slice()),
            Err(StorageError::Corrupt { .. })
        ));
        let mut future = buf.clone();
        future[8] = FORMAT_VERSION + 1;
        assert!(matches!(
            read_checkpoint(&mut future.as_slice()),
            Err(StorageError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn corrupted_log_is_a_typed_error() {
        let mut log = UpdateLog::new();
        log.record(sample_batch(0), DeltaEffect::default());
        let mut buf = Vec::new();
        log.to_writer(&mut buf).unwrap();
        for cut in [0, 5, 9, 17, buf.len() - 1] {
            assert!(matches!(
                UpdateLog::from_reader(&mut &buf[..cut]),
                Err(StorageError::Corrupt { .. })
            ));
        }
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(
            UpdateLog::from_reader(&mut buf.as_slice()),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn approx_bytes_tracks_batch_contents() {
        let empty = DeltaBatch::new();
        let loaded = sample_batch(0);
        assert!(loaded.approx_bytes() > empty.approx_bytes());
        let mut log = UpdateLog::new();
        assert_eq!(log.approx_bytes(), 0);
        log.record(loaded.clone(), DeltaEffect::default());
        log.record(loaded.clone(), DeltaEffect::default());
        assert_eq!(log.approx_bytes(), 2 * loaded.approx_bytes());
    }
}
