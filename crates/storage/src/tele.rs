//! Feature-gated telemetry primitives.
//!
//! With the `telemetry` feature on, these are `dcq-telemetry`'s atomic cells;
//! with it off they are zero-sized stubs whose methods compile to nothing, so
//! instrumentation call sites stay unconditional and cost-free in the
//! telemetry-off build.

#[cfg(feature = "telemetry")]
pub(crate) use dcq_telemetry::{Counter, Gauge};

/// No-op stand-in for [`dcq_telemetry::Counter`].
#[cfg(not(feature = "telemetry"))]
#[derive(Debug, Default, Clone)]
pub(crate) struct Counter;

#[cfg(not(feature = "telemetry"))]
#[allow(dead_code)]
impl Counter {
    #[inline(always)]
    pub fn inc(&self) {}
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op stand-in for [`dcq_telemetry::Gauge`].
#[cfg(not(feature = "telemetry"))]
#[derive(Debug, Default, Clone)]
pub(crate) struct Gauge;

#[cfg(not(feature = "telemetry"))]
#[allow(dead_code)]
impl Gauge {
    #[inline(always)]
    pub fn set(&self, _v: u64) {}
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    #[inline(always)]
    pub fn sub(&self, _n: u64) {}
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}
