//! Flat columnar id storage — the execution-coordinate mirror of a relation.
//!
//! A [`RelationStore`] holds one relation's contents as `arity` parallel
//! `Vec<u32>` columns of dictionary ids plus a membership map from packed row
//! ids to the row's **slot**.  Slots are stable: a row keeps its slot until it
//! is deleted, deletions push the slot onto a free list, and later inserts
//! reuse freed slots before growing the columns — so the buffers never shift
//! and never grow past the high-water mark of live rows.
//!
//! The store exists for the hot paths: shared indexes build from it without
//! touching a single [`Row`](crate::Row), and counting engines seed from it as
//! one id-space insert delta.  The row-space [`Relation`](crate::Relation)
//! stays the canonical public representation; this is its interned shadow,
//! maintained in lock-step by [`SharedDatabase::apply_batch`](crate::SharedDatabase::apply_batch).
//!
//! [`IdDelta`] is the id-space form of one relation's normalized batch delta:
//! contiguous row blocks of stride `arity` plus a sign per row, interned once
//! at commit and fanned out to every index and every counting side.

use crate::hash::{shard_of_ids, FastHashMap};
use crate::idkey::IdKey;
use std::fmt;

/// Number of hash shards a [`ShardedRelationStore`] splits one relation's
/// mirror (and the registry its index buckets) into.
///
/// Fixed — never derived from worker count or host parallelism — because shard
/// membership is observable through iteration order (`to_insert_delta`,
/// `for_each_row` visit shards in order): a fixed count keeps store contents
/// bit-identical across hosts and worker configurations, preserving the
/// engine's determinism contract.  Commit *width* (how many workers apply the
/// shards) is the free, content-invariant knob.
pub const STORE_SHARDS: usize = 4;

/// Fraction of allocated slots that may be free-listed holes before
/// [`RelationStore::apply_delta`] compacts the columns: holes strictly above
/// half trigger a rebuild.
const COMPACT_HOLE_DENOMINATOR: usize = 2;

/// Stores smaller than this many slots never auto-compact — rebuilding a
/// handful of rows saves nothing and would churn the slot map on every
/// trickle delete.
const COMPACT_MIN_SLOTS: usize = 16;

/// One relation's normalized delta in id space: row blocks of stride `arity`
/// with one sign each.  Interned once per applied batch and shared by every
/// consumer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdDelta {
    /// Ids per row (the relation's arity).
    pub arity: usize,
    /// Concatenated row blocks, `signs.len() * arity` ids long.
    pub ids: Vec<u32>,
    /// `+1` insert / `-1` delete per row block.
    pub signs: Vec<i8>,
}

impl IdDelta {
    /// An empty delta over rows of `arity` ids.
    pub fn new(arity: usize) -> Self {
        IdDelta {
            arity,
            ids: Vec::new(),
            signs: Vec::new(),
        }
    }

    /// Append one signed row block.
    pub fn push(&mut self, ids: &[u32], sign: i64) {
        debug_assert_eq!(ids.len(), self.arity);
        self.ids.extend_from_slice(ids);
        self.signs.push(if sign > 0 { 1 } else { -1 });
    }

    /// Number of signed rows.
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// `true` iff the delta carries no rows.
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// The `i`-th row block.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.ids[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate `(row ids, sign)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], i64)> {
        self.signs
            .iter()
            .enumerate()
            .map(|(i, &sign)| (self.row(i), sign as i64))
    }
}

/// Flat columnar storage of one relation's rows as dictionary ids.
#[derive(Clone, Default)]
pub struct RelationStore {
    arity: usize,
    /// `arity` parallel columns, each `slots` long (freed slots keep stale
    /// ids; liveness is defined by `by_row`).
    cols: Vec<Vec<u32>>,
    /// Total slots allocated (live + freed).
    slots: u32,
    /// Freed slots awaiting reuse.
    free: Vec<u32>,
    /// Packed row ids → slot, for O(1) membership and deletion.
    by_row: FastHashMap<IdKey, u32>,
}

impl RelationStore {
    /// An empty store for rows of `arity` ids.
    pub fn new(arity: usize) -> Self {
        RelationStore {
            arity,
            cols: vec![Vec::new(); arity],
            slots: 0,
            free: Vec::new(),
            by_row: FastHashMap::default(),
        }
    }

    /// Ids per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.by_row.len()
    }

    /// `true` iff no row is live.
    pub fn is_empty(&self) -> bool {
        self.by_row.is_empty()
    }

    /// Total slots allocated (live rows + free-listed holes) — the column
    /// length.
    pub fn slot_count(&self) -> usize {
        self.slots as usize
    }

    /// `true` iff the row is live.
    pub fn contains_ids(&self, ids: &[u32]) -> bool {
        self.by_row.contains_key(ids)
    }

    /// The live slot of `ids`, if present.
    pub fn slot_of(&self, ids: &[u32]) -> Option<u32> {
        self.by_row.get(ids).copied()
    }

    /// Insert a row, reusing a freed slot if one exists.  Returns the slot,
    /// or `None` if the row was already live (set semantics).
    pub fn insert_ids(&mut self, ids: &[u32]) -> Option<u32> {
        debug_assert_eq!(ids.len(), self.arity);
        if self.by_row.contains_key(ids) {
            return None;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                for (col, &id) in self.cols.iter_mut().zip(ids) {
                    col[slot as usize] = id;
                }
                slot
            }
            None => {
                let slot = self.slots;
                for (col, &id) in self.cols.iter_mut().zip(ids) {
                    col.push(id);
                }
                self.slots += 1;
                slot
            }
        };
        self.by_row.insert(IdKey::from_slice(ids), slot);
        Some(slot)
    }

    /// Delete a row, free-listing its slot.  Returns the freed slot, or
    /// `None` if the row was not live.
    pub fn remove_ids(&mut self, ids: &[u32]) -> Option<u32> {
        debug_assert_eq!(ids.len(), self.arity);
        let slot = self.by_row.remove(ids)?;
        self.free.push(slot);
        Some(slot)
    }

    /// Read the row at a **live** slot into `buf` (cleared first).
    pub fn gather(&self, slot: u32, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|col| col[slot as usize]));
    }

    /// Visit every live row as an id slice.
    pub fn for_each_row(&self, mut f: impl FnMut(&[u32])) {
        for key in self.by_row.keys() {
            f(key.as_slice());
        }
    }

    /// The whole current contents as one insert-only [`IdDelta`] — how a
    /// counting engine seeds itself from the store without cloning a row.
    pub fn to_insert_delta(&self) -> IdDelta {
        let mut delta = IdDelta::new(self.arity);
        delta.ids.reserve(self.len() * self.arity);
        delta.signs.reserve(self.len());
        self.for_each_row(|ids| delta.push(ids, 1));
        delta
    }

    /// Fold one [`IdDelta`] in (inserts and deletes, set-semantics),
    /// compacting afterwards if deletions left the columns majority-holes.
    pub fn apply_delta(&mut self, delta: &IdDelta) {
        debug_assert_eq!(delta.arity, self.arity);
        for (ids, sign) in delta.iter() {
            if sign > 0 {
                self.insert_ids(ids);
            } else {
                self.remove_ids(ids);
            }
        }
        self.maybe_compact();
    }

    /// Fold in only the rows of `delta` that hash-route to `shard` of
    /// `shard_count` — the per-shard half of a sharded commit.  Applying every
    /// shard index exactly once (in any order, on any thread) is equivalent to
    /// one [`RelationStore::apply_delta`] of the whole delta.
    pub fn apply_delta_routed(&mut self, delta: &IdDelta, shard: usize, shard_count: usize) {
        debug_assert_eq!(delta.arity, self.arity);
        for (ids, sign) in delta.iter() {
            if shard_of_ids(ids, shard_count) != shard {
                continue;
            }
            if sign > 0 {
                self.insert_ids(ids);
            } else {
                self.remove_ids(ids);
            }
        }
        self.maybe_compact();
    }

    /// Number of free-listed holes in the columns.
    pub fn holes(&self) -> usize {
        self.free.len()
    }

    /// Compact when holes exceed half the allocated slots (and the store is
    /// big enough to be worth it).  Called on the batch path only — the direct
    /// `insert_ids`/`remove_ids` API keeps its documented slot-stability so
    /// callers holding slots across single-row edits stay valid.
    fn maybe_compact(&mut self) {
        if self.slots as usize >= COMPACT_MIN_SLOTS
            && self.free.len() * COMPACT_HOLE_DENOMINATOR > self.slots as usize
        {
            self.compact();
        }
    }

    /// Rebuild the columns densely from the live rows, dropping every
    /// free-listed hole and returning the freed capacity to the allocator.
    ///
    /// Slots are reassigned — any slot obtained before the compaction is
    /// invalidated.  Contents (`len`, `contains_ids`, iteration) are
    /// unchanged.
    pub fn compact(&mut self) {
        let live = self.by_row.len();
        let mut cols: Vec<Vec<u32>> = (0..self.arity).map(|_| Vec::with_capacity(live)).collect();
        let mut next: u32 = 0;
        for (key, slot) in self.by_row.iter_mut() {
            let ids = key.as_slice();
            for (col, &id) in cols.iter_mut().zip(ids) {
                col.push(id);
            }
            *slot = next;
            next += 1;
        }
        self.cols = cols;
        self.slots = next;
        self.free = Vec::new();
        self.by_row.shrink_to_fit();
    }

    /// Estimated **allocated** heap footprint in bytes: the flat column
    /// buffers at capacity (live cells and free-listed holes alike), the free
    /// list, and the membership map.  See [`RelationStore::live_bytes`] for
    /// the live-data view.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<RelationStore>();
        for col in &self.cols {
            bytes += col.capacity() * std::mem::size_of::<u32>();
        }
        bytes += self.free.capacity() * std::mem::size_of::<u32>();
        bytes +=
            self.by_row.capacity() * (std::mem::size_of::<IdKey>() + std::mem::size_of::<u32>());
        for key in self.by_row.keys() {
            bytes += key.heap_bytes();
        }
        bytes
    }

    /// Estimated heap bytes attributable to **live** rows only: column cells
    /// of live slots plus live membership entries.  `approx_bytes -
    /// live_bytes` is the slack (holes, spare capacity) the compactor can
    /// reclaim.
    pub fn live_bytes(&self) -> usize {
        let live = self.by_row.len();
        let mut bytes = std::mem::size_of::<RelationStore>();
        bytes += live * self.arity * std::mem::size_of::<u32>();
        bytes += live * (std::mem::size_of::<IdKey>() + std::mem::size_of::<u32>());
        for key in self.by_row.keys() {
            bytes += key.heap_bytes();
        }
        bytes
    }
}

/// One relation's flat mirror split into [`STORE_SHARDS`] hash-disjoint
/// [`RelationStore`]s.
///
/// Every row is owned by exactly one shard — `shard_of_ids(row) %
/// STORE_SHARDS` — so a batch delta decomposes into per-shard sub-deltas that
/// commit independently: [`SharedDatabase::apply_batch`](crate::SharedDatabase::apply_batch)
/// runs one worker per shard with no locks, no cross-shard writes, and no
/// ordering between shards.  All read paths (membership, seeding, iteration)
/// visit shards in fixed shard order, so contents are deterministic whatever
/// the commit width.
#[derive(Clone, Default)]
pub struct ShardedRelationStore {
    arity: usize,
    shards: Vec<RelationStore>,
}

impl ShardedRelationStore {
    /// An empty sharded store for rows of `arity` ids.
    pub fn new(arity: usize) -> Self {
        ShardedRelationStore {
            arity,
            shards: (0..STORE_SHARDS)
                .map(|_| RelationStore::new(arity))
                .collect(),
        }
    }

    /// Ids per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live rows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(RelationStore::len).sum()
    }

    /// `true` iff no shard holds a live row.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(RelationStore::is_empty)
    }

    /// The shard owning `ids`.
    pub fn shard_of(&self, ids: &[u32]) -> usize {
        shard_of_ids(ids, self.shards.len())
    }

    /// `true` iff the row is live (in its owning shard).
    pub fn contains_ids(&self, ids: &[u32]) -> bool {
        self.shards[self.shard_of(ids)].contains_ids(ids)
    }

    /// Insert a row into its owning shard; `true` iff it was not already live.
    pub fn insert_ids(&mut self, ids: &[u32]) -> bool {
        let shard = self.shard_of(ids);
        self.shards[shard].insert_ids(ids).is_some()
    }

    /// Delete a row from its owning shard; `true` iff it was live.
    pub fn remove_ids(&mut self, ids: &[u32]) -> bool {
        let shard = self.shard_of(ids);
        self.shards[shard].remove_ids(ids).is_some()
    }

    /// The shards in shard order (read-only).
    pub fn shards(&self) -> &[RelationStore] {
        &self.shards
    }

    /// The shards in shard order, mutably — the commit path borrows each
    /// shard into its own worker task.
    pub fn shards_mut(&mut self) -> &mut [RelationStore] {
        &mut self.shards
    }

    /// Fold one [`IdDelta`] in, shard by shard in shard order.  Identical
    /// content to the parallel per-shard commit — both route every row through
    /// [`RelationStore::apply_delta_routed`].
    pub fn apply_delta(&mut self, delta: &IdDelta) {
        let shard_count = self.shards.len();
        for (shard, store) in self.shards.iter_mut().enumerate() {
            store.apply_delta_routed(delta, shard, shard_count);
        }
    }

    /// Visit every live row, shard by shard in shard order.
    pub fn for_each_row(&self, mut f: impl FnMut(&[u32])) {
        for shard in &self.shards {
            shard.for_each_row(&mut f);
        }
    }

    /// The whole current contents as one insert-only [`IdDelta`], shards
    /// concatenated in shard order.
    pub fn to_insert_delta(&self) -> IdDelta {
        let mut delta = IdDelta::new(self.arity);
        let rows = self.len();
        delta.ids.reserve(rows * self.arity);
        delta.signs.reserve(rows);
        self.for_each_row(|ids| delta.push(ids, 1));
        delta
    }

    /// Estimated **allocated** heap bytes across all shards.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<ShardedRelationStore>()
            + self
                .shards
                .iter()
                .map(RelationStore::approx_bytes)
                .sum::<usize>()
    }

    /// Estimated heap bytes attributable to **live** rows across all shards.
    pub fn live_bytes(&self) -> usize {
        std::mem::size_of::<ShardedRelationStore>()
            + self
                .shards
                .iter()
                .map(RelationStore::live_bytes)
                .sum::<usize>()
    }
}

impl fmt::Debug for ShardedRelationStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShardedRelationStore[arity {}, {} live rows, {} shards]",
            self.arity,
            self.len(),
            self.shards.len()
        )
    }
}

impl fmt::Debug for RelationStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RelationStore[arity {}, {} live rows, {} slots, {} free]",
            self.arity,
            self.len(),
            self.slots,
            self.free.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_and_slot_reuse() {
        let mut store = RelationStore::new(2);
        assert!(store.is_empty());
        let a = store.insert_ids(&[1, 2]).unwrap();
        let b = store.insert_ids(&[3, 4]).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.insert_ids(&[1, 2]), None, "set semantics");
        assert_eq!(store.len(), 2);
        assert_eq!(store.slot_count(), 2);
        assert!(store.contains_ids(&[1, 2]));
        assert_eq!(store.slot_of(&[3, 4]), Some(b));

        // Deletion free-lists the slot; the next insert reuses it — the
        // columns never grow past the live high-water mark.
        assert_eq!(store.remove_ids(&[1, 2]), Some(a));
        assert_eq!(store.remove_ids(&[1, 2]), None);
        assert_eq!(store.len(), 1);
        let c = store.insert_ids(&[5, 6]).unwrap();
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(store.slot_count(), 2);

        let mut buf = Vec::new();
        store.gather(c, &mut buf);
        assert_eq!(buf, vec![5, 6]);
        store.gather(b, &mut buf);
        assert_eq!(buf, vec![3, 4]);
        assert!(format!("{store:?}").contains("2 live rows"));
    }

    #[test]
    fn iteration_and_seed_delta_cover_live_rows_only() {
        let mut store = RelationStore::new(1);
        for id in 0..5u32 {
            store.insert_ids(&[id]);
        }
        store.remove_ids(&[2]);
        let mut seen: Vec<u32> = Vec::new();
        store.for_each_row(|ids| seen.push(ids[0]));
        seen.sort();
        assert_eq!(seen, vec![0, 1, 3, 4]);

        let seed = store.to_insert_delta();
        assert_eq!(seed.len(), 4);
        assert!(seed.iter().all(|(_, sign)| sign == 1));
        let mut ids: Vec<u32> = seed.iter().map(|(row, _)| row[0]).collect();
        ids.sort();
        assert_eq!(ids, vec![0, 1, 3, 4]);
    }

    #[test]
    fn apply_delta_round_trips() {
        let mut store = RelationStore::new(2);
        let mut delta = IdDelta::new(2);
        delta.push(&[1, 1], 1);
        delta.push(&[2, 2], 1);
        store.apply_delta(&delta);
        assert_eq!(store.len(), 2);
        let mut undo = IdDelta::new(2);
        undo.push(&[1, 1], -1);
        assert_eq!(undo.row(0), &[1, 1]);
        assert!(!undo.is_empty());
        store.apply_delta(&undo);
        assert_eq!(store.len(), 1);
        assert!(store.contains_ids(&[2, 2]));
    }

    #[test]
    fn nullary_relations_hold_at_most_one_row() {
        let mut store = RelationStore::new(0);
        assert_eq!(store.insert_ids(&[]), Some(0));
        assert_eq!(store.insert_ids(&[]), None);
        assert_eq!(store.len(), 1);
        assert_eq!(store.remove_ids(&[]), Some(0));
        assert!(store.is_empty());
        let empty = store.to_insert_delta();
        assert!(empty.is_empty());
    }

    #[test]
    fn approx_bytes_tracks_columns() {
        let mut store = RelationStore::new(3);
        let before = store.approx_bytes();
        for i in 0..100u32 {
            store.insert_ids(&[i, i + 1, i + 2]);
        }
        assert!(store.approx_bytes() > before);
    }

    #[test]
    fn bulk_delete_compacts_columns_and_releases_memory() {
        let mut store = RelationStore::new(2);
        let mut inserts = IdDelta::new(2);
        for i in 0..200u32 {
            inserts.push(&[i, i + 1], 1);
        }
        store.apply_delta(&inserts);
        let allocated_full = store.approx_bytes();

        // Delete 80% through the batch path: holes exceed half the slots, so
        // the store compacts — no pinned high-water columns, no free list.
        let mut deletes = IdDelta::new(2);
        for i in 0..160u32 {
            deletes.push(&[i, i + 1], -1);
        }
        store.apply_delta(&deletes);
        assert_eq!(store.len(), 40);
        assert_eq!(store.slot_count(), 40, "columns shrank to the live rows");
        assert_eq!(store.holes(), 0);
        assert!(
            store.approx_bytes() < allocated_full / 2,
            "compaction returned the column capacity"
        );

        // Contents survive compaction and the store keeps working.
        for i in 160..200u32 {
            assert!(store.contains_ids(&[i, i + 1]));
        }
        assert!(!store.contains_ids(&[0, 1]));
        let mut more = IdDelta::new(2);
        more.push(&[500, 501], 1);
        store.apply_delta(&more);
        assert!(store.contains_ids(&[500, 501]));
    }

    #[test]
    fn trickle_deletes_below_threshold_do_not_compact() {
        let mut store = RelationStore::new(1);
        let mut inserts = IdDelta::new(1);
        for i in 0..100u32 {
            inserts.push(&[i], 1);
        }
        store.apply_delta(&inserts);
        let mut deletes = IdDelta::new(1);
        for i in 0..40u32 {
            deletes.push(&[i], -1);
        }
        store.apply_delta(&deletes);
        assert_eq!(store.holes(), 40, "40% holes stay free-listed");
        assert_eq!(store.slot_count(), 100);
    }

    #[test]
    fn live_bytes_splits_from_allocated_bytes() {
        let mut store = RelationStore::new(2);
        let mut inserts = IdDelta::new(2);
        for i in 0..64u32 {
            inserts.push(&[i, i], 1);
        }
        store.apply_delta(&inserts);
        // Delete just under the compaction threshold so holes persist.
        let mut deletes = IdDelta::new(2);
        for i in 0..30u32 {
            deletes.push(&[i, i], -1);
        }
        store.apply_delta(&deletes);
        assert!(store.holes() > 0);
        assert!(
            store.live_bytes() < store.approx_bytes(),
            "holes are allocated but not live"
        );
    }

    #[test]
    fn sharded_store_routes_rows_and_matches_unsharded_contents() {
        let mut sharded = ShardedRelationStore::new(2);
        let mut plain = RelationStore::new(2);
        assert!(sharded.is_empty());
        let mut delta = IdDelta::new(2);
        for i in 0..50u32 {
            delta.push(&[i, i * 3], 1);
        }
        for i in 0..20u32 {
            delta.push(&[i, i * 3], -1);
        }
        sharded.apply_delta(&delta);
        plain.apply_delta(&delta);
        assert_eq!(sharded.arity(), 2);
        assert_eq!(sharded.len(), plain.len());
        for i in 0..50u32 {
            assert_eq!(
                sharded.contains_ids(&[i, i * 3]),
                plain.contains_ids(&[i, i * 3])
            );
        }
        // Every live row lives in exactly its owning shard.
        for (s, shard) in sharded.shards().iter().enumerate() {
            shard.for_each_row(|ids| assert_eq!(sharded.shard_of(ids), s));
        }
        // Seeding covers every live row exactly once.
        let seed = sharded.to_insert_delta();
        assert_eq!(seed.len(), sharded.len());
        let mut seen: Vec<u32> = seed.iter().map(|(row, _)| row[0]).collect();
        seen.sort();
        let mut expected: Vec<u32> = (20..50).collect();
        expected.sort();
        assert_eq!(seen, expected);
        assert!(sharded.approx_bytes() >= sharded.live_bytes());
    }

    #[test]
    fn sharded_direct_api_and_routed_commit_agree() {
        let mut direct = ShardedRelationStore::new(1);
        assert!(direct.insert_ids(&[7]));
        assert!(!direct.insert_ids(&[7]), "set semantics");
        assert!(direct.contains_ids(&[7]));
        assert!(direct.remove_ids(&[7]));
        assert!(!direct.remove_ids(&[7]));

        // Applying each shard's routed slice exactly once — in any order —
        // equals one whole-delta apply.
        let mut delta = IdDelta::new(1);
        for i in 0..40u32 {
            delta.push(&[i], 1);
        }
        let mut routed = ShardedRelationStore::new(1);
        let n = routed.shards().len();
        for shard in (0..n).rev() {
            routed.shards_mut()[shard].apply_delta_routed(&delta, shard, n);
        }
        let mut whole = ShardedRelationStore::new(1);
        whole.apply_delta(&delta);
        assert_eq!(routed.len(), whole.len());
        for i in 0..40u32 {
            assert!(routed.contains_ids(&[i]) && whole.contains_ids(&[i]));
        }
        assert!(format!("{routed:?}").contains("40 live rows"));
    }
}
