//! Flat columnar id storage — the execution-coordinate mirror of a relation.
//!
//! A [`RelationStore`] holds one relation's contents as `arity` parallel
//! `Vec<u32>` columns of dictionary ids plus a membership map from packed row
//! ids to the row's **slot**.  Slots are stable: a row keeps its slot until it
//! is deleted, deletions push the slot onto a free list, and later inserts
//! reuse freed slots before growing the columns — so the buffers never shift
//! and never grow past the high-water mark of live rows.
//!
//! The store exists for the hot paths: shared indexes build from it without
//! touching a single [`Row`](crate::Row), and counting engines seed from it as
//! one id-space insert delta.  The row-space [`Relation`](crate::Relation)
//! stays the canonical public representation; this is its interned shadow,
//! maintained in lock-step by [`SharedDatabase::apply_batch`](crate::SharedDatabase::apply_batch).
//!
//! [`IdDelta`] is the id-space form of one relation's normalized batch delta:
//! contiguous row blocks of stride `arity` plus a sign per row, interned once
//! at commit and fanned out to every index and every counting side.

use crate::hash::FastHashMap;
use crate::idkey::IdKey;
use std::fmt;

/// One relation's normalized delta in id space: row blocks of stride `arity`
/// with one sign each.  Interned once per applied batch and shared by every
/// consumer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdDelta {
    /// Ids per row (the relation's arity).
    pub arity: usize,
    /// Concatenated row blocks, `signs.len() * arity` ids long.
    pub ids: Vec<u32>,
    /// `+1` insert / `-1` delete per row block.
    pub signs: Vec<i8>,
}

impl IdDelta {
    /// An empty delta over rows of `arity` ids.
    pub fn new(arity: usize) -> Self {
        IdDelta {
            arity,
            ids: Vec::new(),
            signs: Vec::new(),
        }
    }

    /// Append one signed row block.
    pub fn push(&mut self, ids: &[u32], sign: i64) {
        debug_assert_eq!(ids.len(), self.arity);
        self.ids.extend_from_slice(ids);
        self.signs.push(if sign > 0 { 1 } else { -1 });
    }

    /// Number of signed rows.
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// `true` iff the delta carries no rows.
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// The `i`-th row block.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.ids[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate `(row ids, sign)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], i64)> {
        self.signs
            .iter()
            .enumerate()
            .map(|(i, &sign)| (self.row(i), sign as i64))
    }
}

/// Flat columnar storage of one relation's rows as dictionary ids.
#[derive(Clone, Default)]
pub struct RelationStore {
    arity: usize,
    /// `arity` parallel columns, each `slots` long (freed slots keep stale
    /// ids; liveness is defined by `by_row`).
    cols: Vec<Vec<u32>>,
    /// Total slots allocated (live + freed).
    slots: u32,
    /// Freed slots awaiting reuse.
    free: Vec<u32>,
    /// Packed row ids → slot, for O(1) membership and deletion.
    by_row: FastHashMap<IdKey, u32>,
}

impl RelationStore {
    /// An empty store for rows of `arity` ids.
    pub fn new(arity: usize) -> Self {
        RelationStore {
            arity,
            cols: vec![Vec::new(); arity],
            slots: 0,
            free: Vec::new(),
            by_row: FastHashMap::default(),
        }
    }

    /// Ids per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.by_row.len()
    }

    /// `true` iff no row is live.
    pub fn is_empty(&self) -> bool {
        self.by_row.is_empty()
    }

    /// Total slots allocated (live rows + free-listed holes) — the column
    /// length.
    pub fn slot_count(&self) -> usize {
        self.slots as usize
    }

    /// `true` iff the row is live.
    pub fn contains_ids(&self, ids: &[u32]) -> bool {
        self.by_row.contains_key(ids)
    }

    /// The live slot of `ids`, if present.
    pub fn slot_of(&self, ids: &[u32]) -> Option<u32> {
        self.by_row.get(ids).copied()
    }

    /// Insert a row, reusing a freed slot if one exists.  Returns the slot,
    /// or `None` if the row was already live (set semantics).
    pub fn insert_ids(&mut self, ids: &[u32]) -> Option<u32> {
        debug_assert_eq!(ids.len(), self.arity);
        if self.by_row.contains_key(ids) {
            return None;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                for (col, &id) in self.cols.iter_mut().zip(ids) {
                    col[slot as usize] = id;
                }
                slot
            }
            None => {
                let slot = self.slots;
                for (col, &id) in self.cols.iter_mut().zip(ids) {
                    col.push(id);
                }
                self.slots += 1;
                slot
            }
        };
        self.by_row.insert(IdKey::from_slice(ids), slot);
        Some(slot)
    }

    /// Delete a row, free-listing its slot.  Returns the freed slot, or
    /// `None` if the row was not live.
    pub fn remove_ids(&mut self, ids: &[u32]) -> Option<u32> {
        debug_assert_eq!(ids.len(), self.arity);
        let slot = self.by_row.remove(ids)?;
        self.free.push(slot);
        Some(slot)
    }

    /// Read the row at a **live** slot into `buf` (cleared first).
    pub fn gather(&self, slot: u32, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|col| col[slot as usize]));
    }

    /// Visit every live row as an id slice.
    pub fn for_each_row(&self, mut f: impl FnMut(&[u32])) {
        for key in self.by_row.keys() {
            f(key.as_slice());
        }
    }

    /// The whole current contents as one insert-only [`IdDelta`] — how a
    /// counting engine seeds itself from the store without cloning a row.
    pub fn to_insert_delta(&self) -> IdDelta {
        let mut delta = IdDelta::new(self.arity);
        delta.ids.reserve(self.len() * self.arity);
        delta.signs.reserve(self.len());
        self.for_each_row(|ids| delta.push(ids, 1));
        delta
    }

    /// Fold one [`IdDelta`] in (inserts and deletes, set-semantics).
    pub fn apply_delta(&mut self, delta: &IdDelta) {
        debug_assert_eq!(delta.arity, self.arity);
        for (ids, sign) in delta.iter() {
            if sign > 0 {
                self.insert_ids(ids);
            } else {
                self.remove_ids(ids);
            }
        }
    }

    /// Estimated heap footprint in bytes: the flat column buffers, the free
    /// list, and the membership map.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<RelationStore>();
        for col in &self.cols {
            bytes += col.capacity() * std::mem::size_of::<u32>();
        }
        bytes += self.free.capacity() * std::mem::size_of::<u32>();
        bytes +=
            self.by_row.capacity() * (std::mem::size_of::<IdKey>() + std::mem::size_of::<u32>());
        for key in self.by_row.keys() {
            bytes += key.heap_bytes();
        }
        bytes
    }
}

impl fmt::Debug for RelationStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RelationStore[arity {}, {} live rows, {} slots, {} free]",
            self.arity,
            self.len(),
            self.slots,
            self.free.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_and_slot_reuse() {
        let mut store = RelationStore::new(2);
        assert!(store.is_empty());
        let a = store.insert_ids(&[1, 2]).unwrap();
        let b = store.insert_ids(&[3, 4]).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.insert_ids(&[1, 2]), None, "set semantics");
        assert_eq!(store.len(), 2);
        assert_eq!(store.slot_count(), 2);
        assert!(store.contains_ids(&[1, 2]));
        assert_eq!(store.slot_of(&[3, 4]), Some(b));

        // Deletion free-lists the slot; the next insert reuses it — the
        // columns never grow past the live high-water mark.
        assert_eq!(store.remove_ids(&[1, 2]), Some(a));
        assert_eq!(store.remove_ids(&[1, 2]), None);
        assert_eq!(store.len(), 1);
        let c = store.insert_ids(&[5, 6]).unwrap();
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(store.slot_count(), 2);

        let mut buf = Vec::new();
        store.gather(c, &mut buf);
        assert_eq!(buf, vec![5, 6]);
        store.gather(b, &mut buf);
        assert_eq!(buf, vec![3, 4]);
        assert!(format!("{store:?}").contains("2 live rows"));
    }

    #[test]
    fn iteration_and_seed_delta_cover_live_rows_only() {
        let mut store = RelationStore::new(1);
        for id in 0..5u32 {
            store.insert_ids(&[id]);
        }
        store.remove_ids(&[2]);
        let mut seen: Vec<u32> = Vec::new();
        store.for_each_row(|ids| seen.push(ids[0]));
        seen.sort();
        assert_eq!(seen, vec![0, 1, 3, 4]);

        let seed = store.to_insert_delta();
        assert_eq!(seed.len(), 4);
        assert!(seed.iter().all(|(_, sign)| sign == 1));
        let mut ids: Vec<u32> = seed.iter().map(|(row, _)| row[0]).collect();
        ids.sort();
        assert_eq!(ids, vec![0, 1, 3, 4]);
    }

    #[test]
    fn apply_delta_round_trips() {
        let mut store = RelationStore::new(2);
        let mut delta = IdDelta::new(2);
        delta.push(&[1, 1], 1);
        delta.push(&[2, 2], 1);
        store.apply_delta(&delta);
        assert_eq!(store.len(), 2);
        let mut undo = IdDelta::new(2);
        undo.push(&[1, 1], -1);
        assert_eq!(undo.row(0), &[1, 1]);
        assert!(!undo.is_empty());
        store.apply_delta(&undo);
        assert_eq!(store.len(), 1);
        assert!(store.contains_ids(&[2, 2]));
    }

    #[test]
    fn nullary_relations_hold_at_most_one_row() {
        let mut store = RelationStore::new(0);
        assert_eq!(store.insert_ids(&[]), Some(0));
        assert_eq!(store.insert_ids(&[]), None);
        assert_eq!(store.len(), 1);
        assert_eq!(store.remove_ids(&[]), Some(0));
        assert!(store.is_empty());
        let empty = store.to_insert_delta();
        assert!(empty.is_empty());
    }

    #[test]
    fn approx_bytes_tracks_columns() {
        let mut store = RelationStore::new(3);
        let before = store.approx_bytes();
        for i in 0..100u32 {
            store.insert_ids(&[i, i + 1, i + 2]);
        }
        assert!(store.approx_bytes() > before);
    }
}
