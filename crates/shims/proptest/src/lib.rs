//! Minimal, offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment for this repository has no network access, so the real
//! crates.io package cannot be fetched.  This shim implements the subset of the API
//! the dcqx test-suite uses:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//! * integer-range strategies (`0i64..8`), tuple strategies (pairs and triples,
//!   arbitrarily nested), and the [`collection`] strategies `vec` / `btree_set`,
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Test cases are generated from a deterministic SplitMix64 stream seeded by the
//! test's name, so failures are reproducible run-to-run.  Unlike the real proptest
//! there is no shrinking: a failing case panics with the standard assertion message.

use std::collections::BTreeSet;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::ops::Range;

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case, seeded by the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut hasher = DefaultHasher::new();
        test_name.hash(&mut hasher);
        TestRng {
            state: hasher.finish() ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of random values, mirroring proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )*
    };
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet`s grown from up to `size` sampled elements.
    ///
    /// Duplicates collapse, so the generated set may be smaller than the sampled
    /// length (the real proptest retries; for testing purposes smaller is fine).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        let span = (size.end - size.start) as u64;
        size.start + rng.next_below(span) as usize
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `BTreeSet` re-export used by some strategy signatures.
pub type SetValue<T> = BTreeSet<T>;

/// Assert a boolean property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Declare property tests: each `fn name(arg in strategy, ..) { body }` item becomes
/// a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&v));
            let u = Strategy::generate(&(1u64..4), &mut rng);
            assert!((1..4).contains(&u));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec((0i64..8, 0i64..8), 0..40);
        let mut a = TestRng::for_case("det", 3);
        let mut b = TestRng::for_case("det", 3);
        assert_eq!(
            Strategy::generate(&strat, &mut a),
            Strategy::generate(&strat, &mut b)
        );
    }

    #[test]
    fn prop_map_and_collections_compose() {
        let strat = crate::collection::vec(0i64..8, 1..10).prop_map(|v| v.len());
        let mut rng = TestRng::for_case("compose", 0);
        for _ in 0..100 {
            let n = Strategy::generate(&strat, &mut rng);
            assert!((1..10).contains(&n));
        }
        let sets = crate::collection::btree_set(0u32..6, 1..4);
        for case in 0..50 {
            let mut rng = TestRng::for_case("sets", case);
            let s = Strategy::generate(&sets, &mut rng);
            assert!((1..4).contains(&s.len()));
            assert!(s.iter().all(|v| *v < 6));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: doc comments, config header and multiple args parse.
        #[test]
        fn macro_round_trip(
            xs in crate::collection::vec((0i64..8, 0i64..8), 0..20),
            n in 1u64..5,
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert_eq!(xs.len(), xs.len(), "lengths {} differ", xs.len());
            for (a, b) in xs {
                prop_assert!((0..8).contains(&a) && (0..8).contains(&b));
            }
        }
    }
}
