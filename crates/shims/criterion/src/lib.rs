//! Minimal, offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no network access, so the real
//! crates.io package cannot be fetched.  This shim implements the small API surface
//! the `dcq-bench` benches use — [`Criterion::benchmark_group`], group configuration
//! (`sample_size` / `warm_up_time` / `measurement_time`), [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple wall-clock
//! sampler that prints mean / min / max per benchmark.  Swap the `[patch]` back to
//! the real crate when the environment gains network access; no bench source needs
//! to change.

use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.bench_function(id, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for warming up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Wall-clock budget for the measured samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measure one benchmark and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };

        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_up_start = Instant::now();
        loop {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut b);
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        // Measurement: up to `sample_size` samples within the time budget.
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        while samples.len() < self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut b);
            if b.iterations > 0 {
                samples.push(b.elapsed / b.iterations);
            }
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }

        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "bench {label:<56} mean {:>12?}  min {:>12?}  max {:>12?}  (n={})",
            mean,
            min,
            max,
            samples.len()
        );
        self
    }

    /// Finish the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Run the routine once and record its wall-clock time.
    ///
    /// The real criterion runs the routine in adaptively sized batches; a single
    /// timed call per sample keeps the shim predictable and is accurate enough for
    /// the millisecond-scale routines this repository benchmarks.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(black_box(out));
    }
}

/// Opaque identity function that defeats constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs >= 3, "expected at least warm-up + samples, got {runs}");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
