//! Synthetic PK-FK benchmark workloads standing in for TPC-H Q16 and TPC-DS Q35/Q69.
//!
//! The paper's benchmark experiments (Figure 5, right half) use three industry
//! benchmark queries whose shared shape is
//! `R₁(x₁,x₂) ⋈ (π R − π R₂(x₂,x₃) ⋈ R₃(x₃,x₄))` over primary-key–foreign-key
//! joins.  TPC data generators are not available here, so each workload synthesizes
//! exactly the schema slice the query touches, with PK-FK joins and selectivities
//! chosen so that `OUT₁ ≈ OUT₂ ≈ OUT ≪ N` — the regime in which the paper observes
//! only minor gains for the optimized plans.  The `scale_factor` knob multiplies all
//! table cardinalities (the paper's SF 1/10/50/100, scaled down ×1000).

use crate::rng::SplitMix64;
use dcq_core::multi::MultiDcq;
use dcq_core::parse::parse_dcq_multi;
use dcq_core::Dcq;
use dcq_storage::{Database, Relation};

/// A generated benchmark workload: database plus the (multi-)difference query.
#[derive(Clone, Debug)]
pub struct BenchmarkWorkload {
    /// Workload name (`"tpch-q16"`, `"tpcds-q35"`, `"tpcds-q69"`).
    pub name: String,
    /// The scale factor used.
    pub scale_factor: usize,
    /// The generated database.
    pub db: Database,
    /// The query, as a difference of (possibly more than two) CQs.
    pub multi: MultiDcq,
}

impl BenchmarkWorkload {
    /// The query as a plain two-sided DCQ, when it has exactly one negative CQ.
    pub fn as_dcq(&self) -> Option<Dcq> {
        if self.multi.negatives.len() == 1 {
            Dcq::new(self.multi.positive.clone(), self.multi.negatives[0].clone()).ok()
        } else {
            None
        }
    }

    /// Total number of input tuples.
    pub fn input_size(&self) -> usize {
        self.db.input_size()
    }
}

fn multi_from(src: &str) -> MultiDcq {
    let (dcq, rest) = parse_dcq_multi(src).expect("benchmark query parses");
    let mut negatives = vec![dcq.q2];
    negatives.extend(rest);
    MultiDcq::new(dcq.q1, negatives).expect("benchmark query heads align")
}

/// TPC-H Q16-like workload: parts/suppliers, excluding suppliers with complaints.
///
/// * `Part(p_partkey)` — parts passing the brand/type/size predicates (already
///   filtered, ~10% of all parts),
/// * `PartSupp(ps_partkey, ps_suppkey)` — 4 suppliers per part (PK-FK),
/// * `BadSupplier(s_suppkey)` — suppliers excluded by the `NOT IN` sub-query (~5%).
pub fn tpch_q16_workload(scale_factor: usize) -> BenchmarkWorkload {
    let sf = scale_factor.max(1);
    let mut rng = SplitMix64::new(1600 + sf as u64);
    let n_parts = 2_000 * sf;
    let n_suppliers = 100 * sf;

    let mut part = Relation::from_int_rows("Part", &["p_partkey"], vec![]);
    for p in 0..n_parts {
        if rng.next_bool(0.10) {
            part.push_unchecked(dcq_storage::row::int_row([p as i64]));
        }
    }
    let mut partsupp = Relation::from_int_rows("PartSupp", &["ps_partkey", "ps_suppkey"], vec![]);
    for p in 0..n_parts {
        for _ in 0..4 {
            let s = rng.next_below(n_suppliers as u64) as i64;
            partsupp.push_unchecked(dcq_storage::row::int_row([p as i64, s]));
        }
    }
    let mut bad = Relation::from_int_rows("BadSupplier", &["s_suppkey"], vec![]);
    for s in 0..n_suppliers {
        if rng.next_bool(0.05) {
            bad.push_unchecked(dcq_storage::row::int_row([s as i64]));
        }
    }
    let mut db = Database::new();
    db.add(part).unwrap();
    db.add(partsupp).unwrap();
    db.add(bad).unwrap();

    let multi = multi_from(
        "Q16(pk, sk) :- PartSupp(pk, sk), Part(pk)
         EXCEPT PartSupp(pk, sk), Part(pk), BadSupplier(sk)",
    );
    BenchmarkWorkload {
        name: "tpch-q16".into(),
        scale_factor: sf,
        db,
        multi,
    }
}

/// Common generator for the two TPC-DS customer-activity workloads.
fn tpcds_customer_db(scale_factor: usize, seed: u64) -> Database {
    let sf = scale_factor.max(1);
    let mut rng = SplitMix64::new(seed + sf as u64);
    let n_customers = 5_000 * sf;
    let n_addresses = 1_000 * sf;
    let n_demographics = 400 * sf;

    let mut customer = Relation::from_int_rows("Customer", &["c_id", "c_addr", "c_demo"], vec![]);
    for c in 0..n_customers {
        customer.push_unchecked(dcq_storage::row::int_row([
            c as i64,
            rng.next_below(n_addresses as u64) as i64,
            rng.next_below(n_demographics as u64) as i64,
        ]));
    }
    let mut address = Relation::from_int_rows("Address", &["c_addr"], vec![]);
    for a in 0..n_addresses {
        // The ca_state IN (…) predicate of the original queries keeps a minority of
        // addresses.
        if rng.next_bool(0.2) {
            address.push_unchecked(dcq_storage::row::int_row([a as i64]));
        }
    }
    let mut demographics = Relation::from_int_rows("Demographics", &["c_demo"], vec![]);
    for d in 0..n_demographics {
        demographics.push_unchecked(dcq_storage::row::int_row([d as i64]));
    }
    // Customers active on each sales channel during the date_dim window.
    let mut store = Relation::from_int_rows("StoreSalesCust", &["c_id"], vec![]);
    let mut web = Relation::from_int_rows("WebSalesCust", &["c_id"], vec![]);
    let mut catalog = Relation::from_int_rows("CatalogSalesCust", &["c_id"], vec![]);
    for c in 0..n_customers {
        if rng.next_bool(0.6) {
            store.push_unchecked(dcq_storage::row::int_row([c as i64]));
        }
        if rng.next_bool(0.45) {
            web.push_unchecked(dcq_storage::row::int_row([c as i64]));
        }
        if rng.next_bool(0.4) {
            catalog.push_unchecked(dcq_storage::row::int_row([c as i64]));
        }
    }
    let mut db = Database::new();
    for rel in [customer, address, demographics, store, web, catalog] {
        db.add(rel).unwrap();
    }
    db
}

/// TPC-DS Q35-like workload: customers (with their address/demographics) that made
/// **no** store, web or catalog purchase in the period — a difference of four CQs.
pub fn tpcds_q35_workload(scale_factor: usize) -> BenchmarkWorkload {
    let db = tpcds_customer_db(scale_factor, 3500);
    let multi = multi_from(
        "Q35(c, a, d) :- Customer(c, a, d), Address(a), Demographics(d)
         EXCEPT Customer(c, a, d), StoreSalesCust(c)
         EXCEPT Customer(c, a, d), WebSalesCust(c)
         EXCEPT Customer(c, a, d), CatalogSalesCust(c)",
    );
    BenchmarkWorkload {
        name: "tpcds-q35".into(),
        scale_factor: scale_factor.max(1),
        db,
        multi,
    }
}

/// TPC-DS Q69-like workload: customers with store purchases but **no** web or
/// catalog purchase in the period.
pub fn tpcds_q69_workload(scale_factor: usize) -> BenchmarkWorkload {
    let db = tpcds_customer_db(scale_factor, 6900);
    let multi = multi_from(
        "Q69(c, a, d) :- Customer(c, a, d), Address(a), Demographics(d), StoreSalesCust(c)
         EXCEPT Customer(c, a, d), WebSalesCust(c)
         EXCEPT Customer(c, a, d), CatalogSalesCust(c)",
    );
    BenchmarkWorkload {
        name: "tpcds-q69".into(),
        scale_factor: scale_factor.max(1),
        db,
        multi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_core::baseline::CqStrategy;
    use dcq_core::multi::{multi_dcq_naive, multi_dcq_recursive};

    #[test]
    fn q16_workload_generates_pk_fk_structure() {
        let w = tpch_q16_workload(1);
        assert_eq!(w.name, "tpch-q16");
        assert!(w.input_size() > 8_000);
        assert!(w.as_dcq().is_some());
        // Every PartSupp part key references an existing part id range.
        let parts = w.db.get("PartSupp").unwrap();
        assert!(parts
            .iter()
            .all(|r| (0..2_000).contains(&r.get(0).as_int().unwrap())));
    }

    #[test]
    fn q16_rewritten_matches_baseline_and_out_is_small() {
        let w = tpch_q16_workload(1);
        let fast = multi_dcq_recursive(&w.multi, &w.db).unwrap();
        let slow = multi_dcq_naive(&w.multi, &w.db, CqStrategy::Vanilla).unwrap();
        assert_eq!(fast.sorted_rows(), slow.sorted_rows());
        // OUT ≪ N: the paper's observation for the benchmark queries.
        assert!(fast.len() < w.input_size() / 4);
        assert!(!fast.is_empty());
    }

    #[test]
    fn q35_and_q69_match_baseline() {
        for w in [tpcds_q35_workload(1), tpcds_q69_workload(1)] {
            assert!(w.as_dcq().is_none());
            let fast = multi_dcq_recursive(&w.multi, &w.db).unwrap();
            let slow = multi_dcq_naive(&w.multi, &w.db, CqStrategy::Vanilla).unwrap();
            assert_eq!(fast.sorted_rows(), slow.sorted_rows(), "{}", w.name);
            assert!(fast.len() < w.db.get("Customer").unwrap().len());
        }
    }

    #[test]
    fn scale_factor_scales_input_size() {
        let small = tpch_q16_workload(1);
        let large = tpch_q16_workload(4);
        assert!(large.input_size() > 3 * small.input_size());
        assert_eq!(large.scale_factor, 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tpcds_q69_workload(1);
        let b = tpcds_q69_workload(1);
        assert_eq!(a.input_size(), b.input_size());
        assert_eq!(
            a.db.get("WebSalesCust").unwrap().len(),
            b.db.get("WebSalesCust").unwrap().len()
        );
    }
}
