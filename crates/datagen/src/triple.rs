//! The `Triple(node1, node2, node3)` relation of §6.2.
//!
//! Tuples are generated from a graph by a mix of the paper's three rules:
//!
//! * **rule 1** — a random directed length-2 path `(a, b, c)`,
//! * **rule 2** — a random edge `(a, b)` extended with a random vertex `c`,
//! * **rule 3** — the vertices `(v₁, v₃, v₅)` of a random length-4 path.
//!
//! Rule 1 produces triples that tend to be *covered* by `Q₂` of the graph queries
//! (they extend to paths / triangles), rules 2 and 3 produce triples that tend to
//! *survive* the difference; changing the mix changes `OUT` while keeping `N`,
//! `OUT₁` and `OUT₂` fixed — which is exactly the Figure 8 experiment.

use crate::graph::Graph;
use crate::rng::SplitMix64;
use dcq_storage::{FastHashSet, Relation};

/// Proportions of the three generation rules (they are normalized internally).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TripleRuleMix {
    /// Weight of rule 1 (length-2 paths).
    pub rule1: f64,
    /// Weight of rule 2 (edge + random vertex).
    pub rule2: f64,
    /// Weight of rule 3 (endpoints-and-middle of a length-4 path).
    pub rule3: f64,
}

impl TripleRuleMix {
    /// The default mix used for the Figure 5 experiments: half of the triples come
    /// from length-2 paths, the rest from the two "noise" rules.
    pub fn balanced() -> Self {
        TripleRuleMix {
            rule1: 0.5,
            rule2: 0.3,
            rule3: 0.2,
        }
    }

    /// A mix producing mostly covered triples (small `OUT`).
    pub fn mostly_paths() -> Self {
        TripleRuleMix {
            rule1: 0.95,
            rule2: 0.04,
            rule3: 0.01,
        }
    }

    /// A mix producing mostly surviving triples (large `OUT`).
    pub fn mostly_random() -> Self {
        TripleRuleMix {
            rule1: 0.05,
            rule2: 0.75,
            rule3: 0.2,
        }
    }

    fn normalized(&self) -> (f64, f64) {
        let total = self.rule1 + self.rule2 + self.rule3;
        assert!(total > 0.0, "rule weights must not all be zero");
        (self.rule1 / total, (self.rule1 + self.rule2) / total)
    }
}

/// Generate a `Triple` relation with `size` distinct tuples from `graph`.
pub fn generate_triples(graph: &Graph, size: usize, mix: TripleRuleMix, seed: u64) -> Relation {
    let mut rng = SplitMix64::new(seed);
    let (p1, p12) = mix.normalized();
    let adj = graph.out_neighbors();
    let edges = &graph.edges;
    let n = graph.n_vertices;

    let mut seen: FastHashSet<(u64, u64, u64)> = FastHashSet::default();
    let mut rel = Relation::from_int_rows("Triple", &["node1", "node2", "node3"], vec![]);
    rel.reserve(size);

    let mut attempts = 0usize;
    let max_attempts = size.saturating_mul(50).max(10_000);
    while seen.len() < size && attempts < max_attempts {
        attempts += 1;
        let draw = rng.next_f64();
        let triple = if draw < p1 {
            // Rule 1: random length-2 path.
            let &(a, b) = rng.choose(edges).expect("graph has edges");
            match rng.choose(&adj[b as usize]) {
                Some(&c) => (a, b, c),
                None => continue,
            }
        } else if draw < p12 {
            // Rule 2: random edge plus random vertex.
            let &(a, b) = rng.choose(edges).expect("graph has edges");
            (a, b, rng.next_below(n))
        } else {
            // Rule 3: (v1, v3, v5) of a random length-4 path.
            let &(v1, v2) = rng.choose(edges).expect("graph has edges");
            let Some(&v3) = rng.choose(&adj[v2 as usize]) else {
                continue;
            };
            let Some(&v4) = rng.choose(&adj[v3 as usize]) else {
                continue;
            };
            let Some(&v5) = rng.choose(&adj[v4 as usize]) else {
                continue;
            };
            (v1, v3, v5)
        };
        if seen.insert(triple) {
            rel.push_unchecked(dcq_storage::row::int_row([
                triple.0 as i64,
                triple.1 as i64,
                triple.2 as i64,
            ]));
        }
    }
    rel.assume_distinct();
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> Graph {
        Graph::uniform(200, 1500, 42)
    }

    #[test]
    fn triples_are_distinct_and_sized() {
        let g = graph();
        let t = generate_triples(&g, 500, TripleRuleMix::balanced(), 1);
        assert_eq!(t.len(), 500);
        assert_eq!(t.distinct_count(), 500);
        assert_eq!(t.schema().arity(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let g = graph();
        let a = generate_triples(&g, 200, TripleRuleMix::balanced(), 9);
        let b = generate_triples(&g, 200, TripleRuleMix::balanced(), 9);
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn rule_mix_changes_coverage() {
        // The fraction of triples that are real length-2 paths should track rule 1's
        // weight — this is the knob behind the Figure 8 OUT sweep.
        let g = graph();
        let path_set: FastHashSet<(u64, u64, u64)> = g.length2_paths().into_iter().collect();
        let count_covered = |mix: TripleRuleMix| {
            let t = generate_triples(&g, 400, mix, 5);
            t.iter()
                .filter(|row| {
                    let a = row.get(0).as_int().unwrap() as u64;
                    let b = row.get(1).as_int().unwrap() as u64;
                    let c = row.get(2).as_int().unwrap() as u64;
                    path_set.contains(&(a, b, c))
                })
                .count()
        };
        let mostly_paths = count_covered(TripleRuleMix::mostly_paths());
        let mostly_random = count_covered(TripleRuleMix::mostly_random());
        assert!(
            mostly_paths > mostly_random + 50,
            "paths {mostly_paths} vs random {mostly_random}"
        );
    }

    #[test]
    fn degenerate_weights_are_rejected() {
        let g = graph();
        let bad = TripleRuleMix {
            rule1: 0.0,
            rule2: 0.0,
            rule3: 0.0,
        };
        let result = std::panic::catch_unwind(|| generate_triples(&g, 10, bad, 1));
        assert!(result.is_err());
    }
}
