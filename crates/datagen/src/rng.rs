//! Deterministic pseudo-random numbers.
//!
//! The experiments must be reproducible from a seed without depending on an external
//! RNG crate, so dcq-datagen ships a tiny SplitMix64 generator (Steele, Lea &
//! Flood's `splitmix64`, the generator Java and many libraries use for seeding).

/// SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift (Lemire) bounded generation; bias is negligible for the
        // workload sizes used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(10) < 10);
            let v = rng.next_range(5, 8);
            assert!((5..8).contains(&v));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_values_cover_the_range() {
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.next_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SplitMix64::new(3);
        let items = [1, 2, 3, 4, 5];
        assert!(items.contains(rng.choose(&items).unwrap()));
        assert!(rng.choose::<u64>(&[]).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn bernoulli_probabilities_are_roughly_respected() {
        let mut rng = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| rng.next_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
