//! Random directed graphs and their Table 2 statistics.

use crate::rng::SplitMix64;
use dcq_storage::{FastHashSet, Relation};

/// A directed graph stored as a deduplicated edge list (no self-loops).
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices (vertex ids are `0..n_vertices`).
    pub n_vertices: u64,
    /// The edges `(src, dst)`.
    pub edges: Vec<(u64, u64)>,
}

/// The per-dataset statistics reported in Table 2 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// `#edge`.
    pub edges: usize,
    /// `#vertex` (vertices incident to at least one edge).
    pub vertices: usize,
    /// `#l2 path` — the number of directed length-2 paths `a→b→c`.
    pub length2_paths: usize,
    /// `#triangle` — the number of directed triangles `a→b→c→a`.
    pub triangles: usize,
}

impl Graph {
    /// Uniform (Erdős–Rényi style) random directed graph with `n` vertices and `m`
    /// distinct edges.
    pub fn uniform(n: u64, m: usize, seed: u64) -> Graph {
        assert!(n >= 2, "need at least two vertices");
        let mut rng = SplitMix64::new(seed);
        let mut seen: FastHashSet<(u64, u64)> = FastHashSet::default();
        let mut edges = Vec::with_capacity(m);
        let max_edges = (n * (n - 1)) as usize;
        let target = m.min(max_edges);
        while edges.len() < target {
            let u = rng.next_below(n);
            let v = rng.next_below(n);
            if u != v && seen.insert((u, v)) {
                edges.push((u, v));
            }
        }
        Graph {
            n_vertices: n,
            edges,
        }
    }

    /// Preferential-attachment ("power-law") random directed graph: each new vertex
    /// attaches `out_degree` edges to targets chosen proportionally to their current
    /// degree.  Skewed degree distributions are what make the intermediate results
    /// of the paper's graph queries (triangles, length-2 paths) blow up relative to
    /// the final output — the phenomenon behind the Figure 5 speedups.
    pub fn preferential_attachment(n: u64, out_degree: usize, seed: u64) -> Graph {
        assert!(n >= 2, "need at least two vertices");
        let mut rng = SplitMix64::new(seed);
        let mut seen: FastHashSet<(u64, u64)> = FastHashSet::default();
        let mut edges: Vec<(u64, u64)> = Vec::with_capacity(n as usize * out_degree);
        // `targets` holds one entry per edge endpoint, so sampling uniformly from it
        // realizes degree-proportional attachment.
        let mut targets: Vec<u64> = vec![0, 1];
        for v in 1..n {
            for _ in 0..out_degree {
                let t = *rng.choose(&targets).expect("targets never empty");
                if t != v && seen.insert((v, t)) {
                    edges.push((v, t));
                    targets.push(t);
                    targets.push(v);
                }
            }
        }
        // Real social graphs are clustered: close a fraction of the length-2 paths
        // into directed triangles, so the triangle-based queries (Q_G3, Example 1.1)
        // have non-trivial intermediate results as they do on the SNAP graphs.
        let mut graph = Graph {
            n_vertices: n,
            edges,
        };
        let closures = graph.edges.len() / 10;
        let adj = graph.out_neighbors();
        let mut added = 0usize;
        while added < closures {
            let &(a, b) = rng.choose(&graph.edges).expect("graph has edges");
            let Some(&c) = rng.choose(&adj[b as usize]) else {
                continue;
            };
            added += 1;
            if c != a && seen.insert((c, a)) {
                graph.edges.push((c, a));
            }
        }
        graph
    }

    /// The `Graph(src, dst)` relation of §6.2.
    pub fn to_relation(&self, name: &str) -> Relation {
        let mut rel = Relation::from_int_rows(name, &["src", "dst"], vec![]);
        rel.reserve(self.edges.len());
        for &(u, v) in &self.edges {
            rel.push_unchecked(dcq_storage::row::int_row([u as i64, v as i64]));
        }
        rel.assume_distinct();
        rel
    }

    /// Out-neighbour adjacency lists, indexed by vertex id.
    pub fn out_neighbors(&self) -> Vec<Vec<u64>> {
        let mut adj = vec![Vec::new(); self.n_vertices as usize];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
        }
        adj
    }

    /// Compute the Table 2 statistics.
    pub fn stats(&self) -> GraphStats {
        let adj = self.out_neighbors();
        let mut incident: FastHashSet<u64> = FastHashSet::default();
        for &(u, v) in &self.edges {
            incident.insert(u);
            incident.insert(v);
        }
        let length2_paths: usize = self.edges.iter().map(|&(_, v)| adj[v as usize].len()).sum();
        // Directed triangles a→b→c→a, counted once per ordered starting edge and
        // divided by 3 (each triangle has three starting edges).
        let edge_set: FastHashSet<(u64, u64)> = self.edges.iter().copied().collect();
        let mut closed = 0usize;
        for &(a, b) in &self.edges {
            for &c in &adj[b as usize] {
                if edge_set.contains(&(c, a)) {
                    closed += 1;
                }
            }
        }
        GraphStats {
            edges: self.edges.len(),
            vertices: incident.len(),
            length2_paths,
            triangles: closed / 3,
        }
    }

    /// All directed length-2 paths `(a, b, c)` (used by the Triple generator).
    pub fn length2_paths(&self) -> Vec<(u64, u64, u64)> {
        let adj = self.out_neighbors();
        let mut out = Vec::new();
        for &(a, b) in &self.edges {
            for &c in &adj[b as usize] {
                out.push((a, b, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_graph_has_requested_size_and_no_duplicates() {
        let g = Graph::uniform(100, 500, 1);
        assert_eq!(g.edges.len(), 500);
        let set: FastHashSet<(u64, u64)> = g.edges.iter().copied().collect();
        assert_eq!(set.len(), 500);
        assert!(g.edges.iter().all(|&(u, v)| u != v && u < 100 && v < 100));
    }

    #[test]
    fn uniform_graph_is_deterministic_per_seed() {
        let a = Graph::uniform(50, 200, 7);
        let b = Graph::uniform(50, 200, 7);
        let c = Graph::uniform(50, 200, 8);
        assert_eq!(a.edges, b.edges);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn preferential_attachment_is_skewed() {
        let g = Graph::preferential_attachment(2000, 4, 3);
        assert!(!g.edges.is_empty());
        // In-degree distribution should have a heavy tail: the max in-degree is much
        // larger than the average.
        let mut indeg = vec![0usize; 2000];
        for &(_, v) in &g.edges {
            indeg[v as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let avg = g.edges.len() / 2000;
        assert!(max > 10 * avg.max(1), "max {max} avg {avg}");
    }

    #[test]
    fn stats_on_a_hand_built_triangle() {
        let g = Graph {
            n_vertices: 4,
            edges: vec![(0, 1), (1, 2), (2, 0), (2, 3)],
        };
        let s = g.stats();
        assert_eq!(s.edges, 4);
        assert_eq!(s.vertices, 4);
        // length-2 paths: 0→1→2, 1→2→0, 1→2→3, 2→0→1 = 4.
        assert_eq!(s.length2_paths, 4);
        assert_eq!(s.triangles, 1);
        assert_eq!(g.length2_paths().len(), 4);
    }

    #[test]
    fn relation_matches_edge_list() {
        let g = Graph::uniform(20, 50, 5);
        let rel = g.to_relation("Graph");
        assert_eq!(rel.len(), 50);
        assert_eq!(rel.schema().arity(), 2);
        assert_eq!(rel.name(), "Graph");
    }

    #[test]
    fn stats_match_relation_level_counting() {
        // Cross-check the triangle count against a query-level count on a small graph.
        let g = Graph::uniform(30, 120, 9);
        let s = g.stats();
        let rel = g.to_relation("G");
        let db = {
            let mut db = dcq_storage::Database::new();
            db.add(rel).unwrap();
            db
        };
        let cq = dcq_core::parse::parse_cq("T(a, b, c) :- G(a, b), G(b, c), G(c, a)").unwrap();
        let triangles =
            dcq_core::baseline::evaluate_cq(&cq, &db, dcq_core::baseline::CqStrategy::Smart)
                .unwrap();
        assert_eq!(triangles.len(), s.triangles * 3);
    }
}
