//! # dcq-datagen
//!
//! Workload generators for **dcqx** reproducing the experimental setup of §6 of
//! *Computing the Difference of Conjunctive Queries Efficiently*:
//!
//! * [`rng`] — a small deterministic PRNG (SplitMix64) so every dataset is
//!   reproducible from a seed,
//! * [`graph`] — random graph generators (uniform and preferential-attachment) plus
//!   the statistics reported in Table 2 (vertices, edges, length-2 paths, triangles),
//! * [`triple`] — the `Triple(node1, node2, node3)` relation built from a graph with
//!   the paper's three generation rules and a mixing knob (used by the Figure 8
//!   sweep),
//! * [`datasets`] — named synthetic stand-ins for the SNAP graphs of Table 2
//!   (`bitcoin-sim`, `epinions-sim`, `dblp-sim`, `google-sim`, `wiki-sim`),
//! * [`benchmark`] — synthetic PK-FK schema slices standing in for TPC-H Q16 and
//!   TPC-DS Q35 / Q69,
//! * [`queries`] — the six graph DCQs `Q_G1 … Q_G6` of Figure 4 and the benchmark
//!   DCQs, expressed against the generated schemas,
//! * [`updates`] — randomized insert/delete batch sequences over any generated
//!   database, feeding the incremental-maintenance subsystem (`dcq-incremental`).

#![warn(missing_docs)]

pub mod benchmark;
pub mod datasets;
pub mod graph;
pub mod queries;
pub mod rng;
pub mod triple;
pub mod updates;

pub use benchmark::{tpcds_q35_workload, tpcds_q69_workload, tpch_q16_workload, BenchmarkWorkload};
pub use datasets::{dataset, dataset_names, GraphDataset};
pub use graph::{Graph, GraphStats};
pub use queries::{graph_queries, graph_query, GraphQueryId};
pub use rng::SplitMix64;
pub use triple::{generate_triples, TripleRuleMix};
pub use updates::{update_workload, UpdateSpec};
