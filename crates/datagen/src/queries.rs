//! The graph pattern queries `Q_G1 … Q_G6` of Figure 4.
//!
//! Every query is a DCQ over the `Graph(src, dst)` and `Triple(node1, node2, node3)`
//! relations of a [`crate::GraphDataset`]:
//!
//! * `Q_G1` — edges that do not start a length-2 path,
//! * `Q_G2` — edge-extended triples whose tail was not sampled with the edge,
//! * `Q_G3` — triples that do not form a triangle (Example 1.1),
//! * `Q_G4` — triples that cannot be extended to a length-3 path,
//! * `Q_G5` — length-3 paths that do not close into a length-4 cycle,
//! * `Q_G6` — pairs of edges that do not sit on a common triangle-plus-pendant
//!   pattern (the Cartesian-product query whose vanilla plan runs out of memory in
//!   the paper's experiments).

use dcq_core::parse::parse_dcq;
use dcq_core::Dcq;

/// Identifier of one of the six graph queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphQueryId {
    /// Q_G1.
    QG1,
    /// Q_G2.
    QG2,
    /// Q_G3.
    QG3,
    /// Q_G4.
    QG4,
    /// Q_G5.
    QG5,
    /// Q_G6.
    QG6,
}

impl GraphQueryId {
    /// All six queries, in paper order.
    pub fn all() -> [GraphQueryId; 6] {
        [
            GraphQueryId::QG1,
            GraphQueryId::QG2,
            GraphQueryId::QG3,
            GraphQueryId::QG4,
            GraphQueryId::QG5,
            GraphQueryId::QG6,
        ]
    }

    /// The paper's name of the query (`"QG3"` etc.).
    pub fn name(&self) -> &'static str {
        match self {
            GraphQueryId::QG1 => "QG1",
            GraphQueryId::QG2 => "QG2",
            GraphQueryId::QG3 => "QG3",
            GraphQueryId::QG4 => "QG4",
            GraphQueryId::QG5 => "QG5",
            GraphQueryId::QG6 => "QG6",
        }
    }
}

/// Build one of the Figure 4 queries as a [`Dcq`].
pub fn graph_query(id: GraphQueryId) -> Dcq {
    let src = match id {
        GraphQueryId::QG1 => {
            "QG1(node1, node2) :- Graph(node1, node2)
             EXCEPT Graph(node1, node2), Graph(node2, node3)"
        }
        GraphQueryId::QG2 => {
            "QG2(node1, node2, node3, node4) :- Graph(node1, node2), Triple(node2, node3, node4)
             EXCEPT Triple(node1, node2, node3), Graph(node3, node4)"
        }
        GraphQueryId::QG3 => {
            "QG3(node1, node2, node3) :- Triple(node1, node2, node3)
             EXCEPT Graph(node1, node2), Graph(node2, node3), Graph(node3, node1)"
        }
        GraphQueryId::QG4 => {
            "QG4(node1, node2, node3) :- Triple(node1, node2, node3)
             EXCEPT Graph(node1, node2), Graph(node2, node3), Graph(node3, node4)"
        }
        GraphQueryId::QG5 => {
            "QG5(node1, node2, node3, node4) :- Graph(node1, node2), Graph(node2, node3), Graph(node3, node4)
             EXCEPT Graph(node2, node3), Graph(node3, node4), Graph(node4, node1)"
        }
        GraphQueryId::QG6 => {
            "QG6(node1, node2, node3, node4) :- Graph(node1, node2), Graph(node3, node4)
             EXCEPT Graph(node1, node2), Graph(node2, node3), Graph(node3, node1), Graph(node3, node4)"
        }
    };
    parse_dcq(src).expect("the Figure 4 queries are well-formed")
}

/// All six graph queries with their identifiers.
pub fn graph_queries() -> Vec<(GraphQueryId, Dcq)> {
    GraphQueryId::all()
        .into_iter()
        .map(|id| (id, graph_query(id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_core::classify::{classify, DcqClass};

    #[test]
    fn all_queries_parse_and_share_heads() {
        for (id, dcq) in graph_queries() {
            assert_eq!(dcq.q1.head_set(), dcq.q2.head_set(), "{}", id.name());
            assert!(!dcq.q1.atoms.is_empty());
            assert!(!dcq.q2.atoms.is_empty());
        }
        assert_eq!(GraphQueryId::all().len(), 6);
        assert_eq!(GraphQueryId::QG3.name(), "QG3");
    }

    #[test]
    fn expected_dichotomy_classes() {
        // QG1–QG4 and QG6 admit the linear-time algorithm (the appendix's optimized
        // SQL rewrites them into unions of per-edge NOT EXISTS checks); QG5 falls
        // into the hard class — its cycle-closing edge {node4, node1} makes
        // (y, E1' ∪ {e}) cyclic, and the rewritten SQL keeps a correlated NOT EXISTS
        // probe, matching the Corollary 2.5 heuristic.
        let expected = [
            (GraphQueryId::QG1, true),
            (GraphQueryId::QG2, true),
            (GraphQueryId::QG3, true),
            (GraphQueryId::QG4, true),
            (GraphQueryId::QG5, false),
            (GraphQueryId::QG6, true),
        ];
        for (id, easy) in expected {
            let c = classify(&graph_query(id));
            assert_eq!(
                c.class == DcqClass::DifferenceLinear,
                easy,
                "{} classified as {:?}",
                id.name(),
                c.class
            );
        }
    }

    #[test]
    fn queries_run_on_a_tiny_dataset() {
        let dataset = crate::datasets::build_dataset(
            "tiny",
            crate::graph::Graph::uniform(40, 200, 7),
            0.5,
            crate::triple::TripleRuleMix::balanced(),
            11,
        );
        let planner = dcq_core::planner::DcqPlanner::smart();
        for (id, dcq) in graph_queries() {
            let optimized = planner.execute(&dcq, &dataset.db).unwrap();
            let baseline = planner
                .execute_with(dcq_core::planner::Strategy::Baseline, &dcq, &dataset.db)
                .unwrap();
            assert_eq!(
                optimized.sorted_rows(),
                baseline.sorted_rows(),
                "{} differs between plans",
                id.name()
            );
        }
    }
}
