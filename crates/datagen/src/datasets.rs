//! Named synthetic graph datasets standing in for the SNAP graphs of Table 2.
//!
//! The paper evaluates on Bitcoin, Epinions, DBLP, Google and Wiki from SNAP.  Those
//! downloads are not available here, so each dataset is replaced by a synthetic
//! graph whose *scale ordering* and *skew* mirror the original (see DESIGN.md §2):
//! preferential attachment reproduces the heavy-tailed degree distributions that
//! make the intermediate results (triangles, length-2 paths) much larger than the
//! final DCQ outputs, which is the regime where the paper's speedups appear.
//! Sizes are scaled down so the whole Figure 5 sweep runs on a laptop.
//!
//! Following §6.2, the `Triple` relation holds `0.5 × (#length-2 paths)` tuples
//! (`0.05 ×` for `wiki-sim`) generated with the balanced rule mix.

use crate::graph::{Graph, GraphStats};
use crate::triple::{generate_triples, TripleRuleMix};
use dcq_storage::Database;

/// A generated graph dataset: the graph, its `Graph` / `Triple` relations and its
/// Table 2 statistics.
#[derive(Clone, Debug)]
pub struct GraphDataset {
    /// Dataset name (e.g. `"epinions-sim"`).
    pub name: String,
    /// The generated graph.
    pub graph: Graph,
    /// The database holding `Graph(src, dst)` and `Triple(node1, node2, node3)`.
    pub db: Database,
    /// Table 2 statistics of the graph.
    pub stats: GraphStats,
    /// Number of `Triple` tuples.
    pub triple_size: usize,
}

/// The names of the available synthetic datasets, smallest first.
pub fn dataset_names() -> Vec<&'static str> {
    vec![
        "bitcoin-sim",
        "dblp-sim",
        "epinions-sim",
        "google-sim",
        "wiki-sim",
    ]
}

/// Generate a named dataset (deterministic for a given name).
///
/// # Panics
/// Panics if the name is not one of [`dataset_names`].
pub fn dataset(name: &str) -> GraphDataset {
    // (vertices, out-degree, uniform?, triple fraction)
    let (n, deg, uniform, triple_fraction) = match name {
        // Bitcoin-OTC is small and relatively dense (kept smallest so that even the
        // Cartesian-product query Q_G6 completes on it, as in the paper).
        "bitcoin-sim" => (500u64, 4usize, false, 0.5),
        // DBLP is larger but sparser and less skewed (co-authorship).
        "dblp-sim" => (5_000, 3, true, 0.5),
        // Epinions: mid-sized, heavily skewed social graph.
        "epinions-sim" => (4_000, 6, false, 0.5),
        // Google web graph: larger, skewed.
        "google-sim" => (7_000, 5, false, 0.5),
        // Wiki talk: largest and most skewed; the paper uses a 0.05 Triple fraction.
        "wiki-sim" => (12_000, 6, false, 0.05),
        other => panic!(
            "unknown dataset `{other}` (available: {:?})",
            dataset_names()
        ),
    };
    let seed = name.bytes().fold(0xD1FF_u64, |acc, b| {
        acc.wrapping_mul(131).wrapping_add(b as u64)
    });
    let graph = if uniform {
        Graph::uniform(n, n as usize * deg, seed)
    } else {
        Graph::preferential_attachment(n, deg, seed)
    };
    build_dataset(
        name,
        graph,
        triple_fraction,
        TripleRuleMix::balanced(),
        seed ^ 0xABCD,
    )
}

/// Build a dataset from an explicit graph (used by the sweep experiments).
pub fn build_dataset(
    name: &str,
    graph: Graph,
    triple_fraction: f64,
    mix: TripleRuleMix,
    seed: u64,
) -> GraphDataset {
    let stats = graph.stats();
    // Follow §6.2 (|Triple| = fraction × #length-2 paths) but cap the relation so
    // the laptop-scale experiments stay laptop-scale even on the skewed graphs.
    let triple_size = ((stats.length2_paths as f64) * triple_fraction).ceil() as usize;
    let triple_size = triple_size.clamp(16, 300_000);
    let triples = generate_triples(&graph, triple_size, mix, seed);
    let mut db = Database::new();
    db.add(graph.to_relation("Graph")).expect("fresh database");
    let triple_size = triples.len();
    db.add(triples).expect("fresh database");
    GraphDataset {
        name: name.to_string(),
        graph,
        db,
        stats,
        triple_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_named_datasets_generate() {
        for name in ["bitcoin-sim", "dblp-sim"] {
            let d = dataset(name);
            assert_eq!(d.name, name);
            assert!(d.db.contains("Graph"));
            assert!(d.db.contains("Triple"));
            assert!(d.stats.edges > 0);
            assert!(d.triple_size > 0);
            assert_eq!(d.db.get("Graph").unwrap().len(), d.stats.edges);
        }
    }

    #[test]
    fn datasets_scale_in_the_documented_order() {
        let small = dataset("bitcoin-sim");
        let large = dataset("epinions-sim");
        assert!(large.stats.edges > small.stats.edges);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset("bitcoin-sim");
        let b = dataset("bitcoin-sim");
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            a.db.get("Triple").unwrap().sorted_rows(),
            b.db.get("Triple").unwrap().sorted_rows()
        );
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        dataset("does-not-exist");
    }

    #[test]
    fn wiki_uses_smaller_triple_fraction() {
        // Not generating the full wiki-sim in unit tests (it is the largest); check
        // the fraction logic through build_dataset instead.
        let g = Graph::uniform(100, 800, 3);
        let half = build_dataset("x", g.clone(), 0.5, TripleRuleMix::balanced(), 1);
        let tiny = build_dataset("y", g, 0.05, TripleRuleMix::balanced(), 1);
        assert!(half.triple_size > tiny.triple_size);
    }
}
