//! Update-workload generation: randomized insert/delete batches over a database.
//!
//! The paper's evaluation (§6) is one-shot; the incremental subsystem
//! (`dcq-incremental`) needs *update* workloads.  [`update_workload`] turns any
//! generated database — graph datasets, triple relations, benchmark slices — into a
//! deterministic sequence of [`DeltaBatch`]es:
//!
//! * **deletes** sample live rows (tracking liveness across batches, so a delete
//!   always targets a row that exists at application time);
//! * **inserts** synthesize fresh rows by sampling each column's value from the
//!   pool of values initially observed in that column, preserving joinability
//!   (a fresh `Graph` edge connects existing vertices, so it can create and destroy
//!   join results rather than dangle), with a fallback to fresh integers when a
//!   sampled combination keeps colliding with live rows.
//!
//! The generator is seeded ([`SplitMix64`]) and therefore reproducible; the same
//! spec and seed yield the same workload.

use crate::rng::SplitMix64;
use dcq_storage::hash::FastHashSet;
use dcq_storage::{Database, DeltaBatch, Row, Value};

/// Shape of a randomized update workload.
#[derive(Clone, Debug)]
pub struct UpdateSpec {
    /// Number of batches to generate.
    pub batches: usize,
    /// Raw operations per batch.
    pub ops_per_batch: usize,
    /// Probability that an operation is an insert (the rest are deletes).
    pub insert_fraction: f64,
    /// Relations to update; each operation picks one uniformly.
    pub relations: Vec<String>,
}

impl UpdateSpec {
    /// A workload of `batches` batches of `ops_per_batch` operations, half inserts,
    /// over the given relations.
    pub fn new(batches: usize, ops_per_batch: usize, relations: &[&str]) -> Self {
        UpdateSpec {
            batches,
            ops_per_batch,
            insert_fraction: 0.5,
            relations: relations.iter().map(|r| r.to_string()).collect(),
        }
    }

    /// Set the insert probability (clamped to `[0, 1]`).
    pub fn with_insert_fraction(mut self, fraction: f64) -> Self {
        self.insert_fraction = fraction.clamp(0.0, 1.0);
        self
    }
}

/// Per-relation generation state: live rows plus per-column value pools.
struct RelationState {
    name: String,
    live_rows: Vec<Row>,
    live_set: FastHashSet<Row>,
    /// Distinct values observed per column at workload-generation start.
    pools: Vec<Vec<Value>>,
    /// Fallback counter for synthesizing never-seen integer values.
    next_fresh: i64,
    /// Rows already updated in the current batch: each batch touches a row at most
    /// once, so every generated operation has an effect under set semantics.
    touched: FastHashSet<Row>,
}

impl RelationState {
    fn new(db: &Database, name: &str) -> Option<RelationState> {
        let rel = db.get(name).ok()?.distinct();
        let arity = rel.schema().arity();
        let mut pools: Vec<FastHashSet<Value>> =
            (0..arity).map(|_| FastHashSet::default()).collect();
        let mut max_int = 0i64;
        for row in rel.iter() {
            for (i, v) in row.iter().enumerate() {
                pools[i].insert(v.clone());
                if let Value::Int(n) = v {
                    max_int = max_int.max(*n);
                }
            }
        }
        Some(RelationState {
            name: name.to_string(),
            live_set: rel.to_row_set(),
            live_rows: rel.rows().to_vec(),
            pools: pools
                .into_iter()
                .map(|p| {
                    let mut v: Vec<Value> = p.into_iter().collect();
                    v.sort();
                    v
                })
                .collect(),
            next_fresh: max_int + 1,
            touched: FastHashSet::default(),
        })
    }

    /// Sample a row absent from the live set and untouched this batch
    /// (pool-sampled, integer fallback).
    fn sample_insert(&mut self, rng: &mut SplitMix64) -> Row {
        for _ in 0..16 {
            let row: Row = self
                .pools
                .iter()
                .map(|pool| match rng.choose(pool) {
                    Some(v) => v.clone(),
                    None => Value::Int(rng.next_below(1 << 20) as i64),
                })
                .collect();
            if !self.live_set.contains(&row) && !self.touched.contains(&row) {
                return row;
            }
        }
        // Dense relation: fall back to a row containing a fresh value.
        let fresh = self.next_fresh;
        self.next_fresh += 1;
        self.pools
            .iter()
            .enumerate()
            .map(|(i, pool)| {
                if i == 0 {
                    Value::Int(fresh)
                } else {
                    rng.choose(pool).cloned().unwrap_or(Value::Int(fresh))
                }
            })
            .collect()
    }

    /// Sample a live, untouched row for deletion; `None` if none can be found.
    fn sample_delete(&mut self, rng: &mut SplitMix64) -> Option<Row> {
        let mut rejections = 0;
        while !self.live_rows.is_empty() && rejections < 8 {
            let i = rng.next_below(self.live_rows.len() as u64) as usize;
            if !self.live_set.contains(&self.live_rows[i]) {
                // Lazily drop rows already deleted in an earlier batch.
                self.live_rows.swap_remove(i);
                continue;
            }
            if self.touched.contains(&self.live_rows[i]) {
                rejections += 1;
                continue;
            }
            return Some(self.live_rows.swap_remove(i));
        }
        None
    }

    fn mark_inserted(&mut self, row: Row) {
        self.touched.insert(row.clone());
        if self.live_set.insert(row.clone()) {
            self.live_rows.push(row);
        }
    }

    fn mark_deleted(&mut self, row: &Row) {
        self.touched.insert(row.clone());
        self.live_set.remove(row);
        // `live_rows` is pruned lazily in `sample_delete`.
    }
}

/// Generate a deterministic sequence of update batches against `db`.
///
/// Relations named by the spec but missing from the database are ignored.  The
/// produced batches are *consistent as a sequence*: deletes always target rows live
/// after all preceding batches, inserts always add rows absent at that point, so
/// applying the batches in order through [`Database::apply_batch`] (or a maintained
/// view) performs exactly the generated operations.
pub fn update_workload(db: &Database, spec: &UpdateSpec, seed: u64) -> Vec<DeltaBatch> {
    let mut rng = SplitMix64::new(seed);
    let mut states: Vec<RelationState> = spec
        .relations
        .iter()
        .filter_map(|name| RelationState::new(db, name))
        .collect();
    let mut batches = Vec::with_capacity(spec.batches);
    if states.is_empty() {
        return batches;
    }
    for _ in 0..spec.batches {
        let mut batch = DeltaBatch::new();
        for state in &mut states {
            state.touched.clear();
        }
        for _ in 0..spec.ops_per_batch {
            let s = rng.next_below(states.len() as u64) as usize;
            let state = &mut states[s];
            if rng.next_bool(spec.insert_fraction) {
                let row = state.sample_insert(&mut rng);
                state.mark_inserted(row.clone());
                batch.insert(state.name.clone(), row);
            } else if let Some(row) = state.sample_delete(&mut rng) {
                state.mark_deleted(&row);
                batch.delete(state.name.clone(), row);
            } else {
                // Nothing left to delete: insert instead so the batch keeps its size.
                let row = state.sample_insert(&mut rng);
                state.mark_inserted(row.clone());
                batch.insert(state.name.clone(), row);
            }
        }
        batches.push(batch);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_storage::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(
            crate::Graph::uniform(50, 200, 7)
                .to_relation("Graph")
                .distinct(),
        )
        .unwrap();
        db.add(Relation::from_int_rows(
            "Tiny",
            &["k"],
            vec![vec![1], vec![2]],
        ))
        .unwrap();
        db
    }

    #[test]
    fn workload_is_deterministic() {
        let db = db();
        let spec = UpdateSpec::new(10, 8, &["Graph"]);
        let a = update_workload(&db, &spec, 42);
        let b = update_workload(&db, &spec, 42);
        assert_eq!(a, b);
        let c = update_workload(&db, &spec, 43);
        assert_ne!(a, c, "different seeds should differ");
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|batch| batch.len() == 8));
    }

    #[test]
    fn batches_apply_cleanly_with_full_effect() {
        // Every generated operation must be effective: inserts of absent rows,
        // deletes of live rows — across the whole sequence.
        let mut db = db();
        let spec = UpdateSpec::new(20, 10, &["Graph", "Tiny"]).with_insert_fraction(0.4);
        for batch in update_workload(&db, &spec, 9) {
            let effect = db.apply_batch(&batch).unwrap();
            assert_eq!(
                effect.effect.total(),
                batch.len(),
                "redundant operation generated in {batch}"
            );
        }
    }

    #[test]
    fn delete_heavy_workload_survives_exhaustion() {
        // With only deletes over a 2-row relation, the generator falls back to
        // inserts once the relation drains, keeping batch sizes stable.
        let mut db = db();
        let spec = UpdateSpec::new(5, 4, &["Tiny"]).with_insert_fraction(0.0);
        let batches = update_workload(&db, &spec, 1);
        for batch in &batches {
            db.apply_batch(batch).unwrap();
            assert_eq!(batch.len(), 4);
        }
    }

    #[test]
    fn unknown_relations_are_ignored() {
        let db = db();
        let spec = UpdateSpec::new(3, 5, &["Missing"]);
        assert!(update_workload(&db, &spec, 5).is_empty());
    }

    #[test]
    fn inserts_prefer_pool_values() {
        // On a sparse graph, sampled inserts should reconnect existing vertices.
        let db = db();
        let spec = UpdateSpec::new(30, 4, &["Graph"]).with_insert_fraction(1.0);
        let batches = update_workload(&db, &spec, 3);
        let vertices: FastHashSet<Value> = db
            .get("Graph")
            .unwrap()
            .iter()
            .flat_map(|r| r.iter().cloned())
            .collect();
        let mut pool_hits = 0usize;
        let mut total = 0usize;
        for batch in &batches {
            for (row, sign) in batch.ops("Graph") {
                assert_eq!(*sign, 1);
                total += 1;
                if row.iter().all(|v| vertices.contains(v)) {
                    pool_hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            pool_hits * 2 > total,
            "most inserts should draw from the value pools ({pool_hits}/{total})"
        );
    }
}
