//! One-shot host calibration of the adaptive maintenance cost model.
//!
//! ```text
//! cargo run --release --example calibrate [nodes] [edges]
//! ```
//!
//! The adaptive policy (`DcqEngine::register_adaptive`) migrates a view between
//! touched-side rerun and counting maintenance when the observed delta fraction
//! crosses `MaintenanceCostModel::crossover_fraction`.  The shipped default is a
//! conservative host-independent guess; this example **measures** the real
//! crossover on the current host: it sweeps delta sizes from 0.1% to 30% of a
//! synthetic graph, times both fixed arms at each size on a single-view
//! [`DcqEngine`] (batch + inverse pairs, so the state resets exactly between
//! samples), fits the crossing point with
//! [`MaintenanceCostModel::from_crossover_samples`], and prints the fitted
//! model as a ready-to-paste `engine.set_cost_model(...)` line.

use dcqx::dcq_datagen::datasets::build_dataset;
use dcqx::dcq_datagen::{
    graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec,
};
use dcqx::dcq_incremental::IncrementalStrategy;
use dcqx::util::header;
use dcqx::{CrossoverSample, DcqEngine, MaintenanceCostModel, UpdateLog};
use std::time::Instant;

/// Swept effective batch sizes as fractions of the database.
const FRACTIONS: [f64; 5] = [0.001, 0.01, 0.03, 0.1, 0.3];
/// Timed batch+inverse pairs per arm per fraction (median kept).
const SAMPLES: usize = 3;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(800);
    let edges: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3_200);

    let data = build_dataset(
        "calibrate",
        Graph::uniform(nodes, edges, 11),
        0.5,
        TripleRuleMix::balanced(),
        4,
    );
    let db = &data.db;
    let total = db.input_size();
    header("adaptive cost-model calibration");
    println!(
        "host sweep over {} tuples: delta fractions {FRACTIONS:?}, query {} (hard shape)",
        total,
        GraphQueryId::QG5.name()
    );

    let dcq = graph_query(GraphQueryId::QG5);
    let mut samples = Vec::new();
    println!(
        "{:>9} {:>8} {:>12} {:>12} {:>10}",
        "delta", "tuples", "rerun ms", "counting ms", "winner"
    );
    for fraction in FRACTIONS {
        let tuples = ((total as f64 * fraction) as usize).max(1);
        let batch = update_workload(db, &UpdateSpec::new(1, tuples, &["Graph"]), 29)
            .pop()
            .expect("one batch");
        let inverse = batch.inverse();
        let arm = |strategy: IncrementalStrategy| -> f64 {
            let mut engine = DcqEngine::with_database(db.clone());
            engine.set_log(UpdateLog::with_limit(4));
            engine
                .register_with(dcq.clone(), strategy)
                .expect("register");
            // One untimed pair settles allocations.
            engine.apply(&batch).expect("warm-up");
            engine.apply(&inverse).expect("warm-up inverse");
            let mut timings: Vec<f64> = (0..SAMPLES)
                .map(|_| {
                    let started = Instant::now();
                    engine.apply(&batch).expect("batch");
                    engine.apply(&inverse).expect("inverse");
                    started.elapsed().as_secs_f64() * 1e3 / 2.0
                })
                .collect();
            timings.sort_by(f64::total_cmp);
            timings[timings.len() / 2]
        };
        let rerun_cost = arm(IncrementalStrategy::EasyRerun);
        let counting_cost = arm(IncrementalStrategy::Counting);
        println!(
            "{fraction:>9.3} {tuples:>8} {rerun_cost:>12.3} {counting_cost:>12.3} {:>10}",
            if counting_cost <= rerun_cost {
                "counting"
            } else {
                "rerun"
            }
        );
        samples.push(CrossoverSample {
            delta_fraction: fraction,
            rerun_cost,
            counting_cost,
        });
    }

    let fitted =
        MaintenanceCostModel::from_crossover_samples(&samples).expect("sweep yields a model");
    let default = MaintenanceCostModel::default();
    header("fitted model");
    println!(
        "measured crossover: {:.4} (shipped default {:.4})",
        fitted.crossover_fraction, default.crossover_fraction
    );
    println!("apply it to an engine with:\n");
    println!(
        "    engine.set_cost_model(MaintenanceCostModel::with_crossover({:.4}));",
        fitted.crossover_fraction
    );
    println!(
        "\nviews registered via register_adaptive() will then flip to rerun once their\n\
         EWMA delta fraction exceeds {:.4} (+{:.0}% hysteresis) and back to counting\n\
         below it; migration is result-invariant (tests/adaptive_migration.rs).",
        fitted.crossover_fraction,
        default.hysteresis * 100.0
    );
}
