//! Bag semantics and aggregation: the worked example of Figure 3 / Examples 5.3–5.4.
//!
//! ```text
//! cargo run --release --example bag_semantics
//! ```

use dcq_core::aggregate::{
    numerical_difference_aggregate, relational_difference_aggregate, AnnotatedDatabase,
};
use dcq_core::bag::{bag_dcq_naive, bag_dcq_rewritten, BagDatabase};
use dcq_core::parse::parse_dcq;
use dcq_storage::{AnnotatedRelation, Attr, BagRelation, Schema};
use dcqx::util::header;

fn bag_db() -> BagDatabase {
    let mut bdb = BagDatabase::new();
    bdb.add(BagRelation::from_int_rows_with_counts(
        "R1",
        &["x1", "x2"],
        vec![(vec![1, 10], 1), (vec![2, 10], 2), (vec![2, 20], 2)],
    ));
    bdb.add(BagRelation::from_int_rows_with_counts(
        "R2",
        &["x2", "x3"],
        vec![(vec![10, 100], 1), (vec![20, 100], 2), (vec![20, 200], 1)],
    ));
    bdb.add(BagRelation::from_int_rows_with_counts(
        "R3",
        &["x1", "x2"],
        vec![(vec![2, 10], 1), (vec![2, 20], 2), (vec![3, 20], 1)],
    ));
    bdb.add(BagRelation::from_int_rows_with_counts(
        "R4",
        &["x2", "x3"],
        vec![(vec![10, 100], 1), (vec![20, 100], 3), (vec![20, 200], 1)],
    ));
    bdb
}

fn ring_db() -> AnnotatedDatabase<i64> {
    let mut adb = AnnotatedDatabase::new();
    for name in ["R1", "R2", "R3", "R4"] {
        let bag = bag_db();
        let src = bag.get(name).unwrap().clone();
        let mut rel: AnnotatedRelation<i64> = AnnotatedRelation::new(name, src.schema().clone());
        for (row, &count) in src.iter() {
            rel.combine(row.clone(), count as i64);
        }
        adb.add(rel);
    }
    adb
}

fn main() {
    let dcq =
        parse_dcq("Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x2), R4(x2, x3)").unwrap();
    let bdb = bag_db();

    header("bag-semantics DCQ (Figure 3 flavour)");
    println!("{dcq}");
    let naive = bag_dcq_naive(&dcq, &bdb).unwrap();
    let rewritten = bag_dcq_rewritten(&dcq, &bdb).unwrap();
    println!("{:<18} {:>6} {:>10}", "tuple", "naive", "rewritten");
    for (row, w) in naive.sorted_entries() {
        println!(
            "{:<18} {:>6} {:>10}",
            format!("{row}"),
            w,
            rewritten.annotation(&row)
        );
    }
    println!(
        "bag output size (Σ multiplicities): {}",
        naive.total_multiplicity()
    );
    assert_eq!(naive.sorted_entries(), rewritten.sorted_entries());

    header("aggregation over annotated relations (Example 5.3)");
    let adb = ring_db();
    let group_by = [Attr::new("x1")];
    let relational = relational_difference_aggregate(&dcq, &adb, &group_by).unwrap();
    let numerical = numerical_difference_aggregate(&dcq, &adb, &group_by).unwrap();
    let schema = Schema::from_names(["x1"]);
    println!("GROUP BY {schema} with SUM annotations:");
    println!("  relational difference:");
    for (row, w) in relational.sorted_entries() {
        println!("    x1 = {row} ↦ {w}");
    }
    println!("  numerical difference:");
    for (row, w) in numerical.sorted_entries() {
        println!("    x1 = {row} ↦ {w}");
    }
}
