//! Difference of multiple conjunctive queries (§5.1): the recursive DMCQ algorithm
//! against the naive fold of set differences, on the TPC-DS Q35-like workload.
//!
//! ```text
//! cargo run --release --example multi_difference [scale_factor]
//! ```

use dcq_core::baseline::CqStrategy;
use dcq_core::multi::{multi_dcq_naive, multi_dcq_recursive};
use dcq_datagen::tpcds_q35_workload;
use dcqx::util::{header, secs, timed};

fn main() {
    let sf: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let workload = tpcds_q35_workload(sf);

    header(&format!("workload: {} (scale factor {sf})", workload.name));
    println!("input tuples N = {}", workload.input_size());
    println!(
        "query: {:?} minus {} negative CQs",
        workload.multi.positive,
        workload.multi.negatives.len()
    );

    header("evaluation");
    let (recursive, t_rec) = timed(|| multi_dcq_recursive(&workload.multi, &workload.db).unwrap());
    let (naive, t_naive) =
        timed(|| multi_dcq_naive(&workload.multi, &workload.db, CqStrategy::Vanilla).unwrap());
    assert_eq!(recursive.sorted_rows(), naive.sorted_rows());

    println!(
        "customers with no channel activity (OUT): {}",
        recursive.len()
    );
    println!("recursive rewriting (Algorithm 4): {}", secs(t_rec));
    println!("naive fold of set differences    : {}", secs(t_naive));
    println!();
    println!("first few results:");
    for row in recursive.sorted_rows().iter().take(5) {
        println!("  (c_id, c_addr, c_demo) = {row}");
    }
}
