//! Incremental DCQ maintenance through the engine: register several difference
//! queries on one shared store, stream update batches at it, and compare against
//! recomputing from scratch per batch.
//!
//! ```text
//! cargo run --release --example incremental_updates [batch_tuples] [batches]
//! ```
//!
//! The demo registers an easy query (`Q_G3`, maintained by touched-side rerun) and
//! a hard one (`Q_G5`, maintained by counting delta joins) on one [`DcqEngine`]
//! over a synthetic graph, then applies a randomized insert/delete workload with a
//! single `engine.apply(batch)` per batch — one normalization pass, one store
//! update, every view maintained — verifying at the end that each maintained
//! result matches the planner's one-shot evaluation.

use dcq_core::planner::DcqPlanner;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec};
use dcqx::util::{header, secs, timed};
use dcqx::DcqEngine;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let batch_tuples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let n_batches: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);

    let data = build_dataset(
        "incremental-demo",
        Graph::uniform(2_000, 8_000, 11),
        0.5,
        TripleRuleMix::balanced(),
        4,
    );
    let mut engine = DcqEngine::with_database(data.db.clone());
    println!(
        "database: {} tuples ({} Graph edges, {} Triple tuples)",
        engine.database().input_size(),
        engine.relation("Graph").unwrap().len(),
        data.triple_size
    );
    println!(
        "workload: {n_batches} batches × {batch_tuples} tuples (≈{:.2}% of the database each)",
        100.0 * batch_tuples as f64 / engine.database().input_size() as f64
    );

    let mut handles = Vec::new();
    for id in [GraphQueryId::QG3, GraphQueryId::QG5] {
        header(&format!("register {}", id.name()));
        let (prepared, t_prepare) = timed(|| engine.prepare(graph_query(id)).expect("prepare"));
        println!("{}", prepared.explain());
        let (handle, t_register) = timed(|| engine.register(&prepared).expect("register"));
        println!(
            "prepared in {} (cache hit: {}), registered in {} with {} result tuples",
            secs(t_prepare),
            prepared.cache_hit(),
            secs(t_register),
            engine.view(handle).unwrap().len()
        );
        handles.push(handle);
    }

    let spec = UpdateSpec::new(n_batches, batch_tuples, &["Graph", "Triple"]);
    let batches = update_workload(engine.database(), &spec, 99);

    header("stream updates");
    let mut apply_time = Duration::ZERO;
    for batch in &batches {
        let (_, elapsed) = timed(|| engine.apply(batch).expect("engine applies"));
        apply_time += elapsed;
    }
    println!(
        "applied {n_batches} batches in {} ({} per batch, all views fanned out)",
        secs(apply_time),
        secs(apply_time / n_batches as u32)
    );

    let planner = DcqPlanner::smart();
    for handle in handles {
        let view = engine.view(handle).unwrap();
        let name = view.dcq().q1.name.clone();
        header(&format!("{name} after {n_batches} batches"));
        let (reference, recompute) = timed(|| {
            planner
                .execute(view.dcq(), engine.database())
                .expect("recompute")
        });
        assert_eq!(
            engine.result(handle).unwrap().sorted_rows(),
            reference.sorted_rows(),
            "maintained result must equal one-shot recomputation"
        );
        let stats = view.stats();
        let per_batch = apply_time / n_batches as u32;
        println!("result size        : {}", view.len());
        println!(
            "engine apply/batch : {} (both views together)",
            secs(per_batch)
        );
        println!(
            "one-shot recompute : {} (×{} batches would be {})",
            secs(recompute),
            n_batches,
            secs(recompute * n_batches as u32)
        );
        println!(
            "speedup vs recompute-per-batch: {:.1}×",
            recompute.as_secs_f64() / per_batch.as_secs_f64().max(1e-9)
        );
        println!(
            "stats: {} applied, {} skipped, +{}/−{} base tuples, +{}/−{} result tuples, {} side recomputes, epoch {}",
            stats.batches_applied,
            stats.batches_skipped,
            stats.tuples_inserted,
            stats.tuples_deleted,
            stats.result_added,
            stats.result_removed,
            stats.side_recomputes,
            view.epoch()
        );
    }

    header("engine");
    println!(
        "epoch {}, {} views, store ≈{:.1} MiB (one copy, regardless of view count)",
        engine.epoch(),
        engine.view_count(),
        engine.store_bytes() as f64 / (1024.0 * 1024.0)
    );
}
