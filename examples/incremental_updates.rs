//! Incremental DCQ maintenance: register a difference query once, stream update
//! batches at it, and compare against recomputing from scratch per batch.
//!
//! ```text
//! cargo run --release --example incremental_updates [batch_tuples] [batches]
//! ```
//!
//! The demo registers an easy query (`Q_G3`, maintained by touched-side rerun) and a
//! hard one (`Q_G5`, maintained by counting delta joins) over the same synthetic
//! graph, then applies a randomized insert/delete workload, verifying after every
//! batch that the maintained result matches the planner's one-shot evaluation.

use dcq_core::planner::DcqPlanner;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec};
use dcq_incremental::MaintainedDcq;
use dcqx::util::{header, secs, timed};
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let batch_tuples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let n_batches: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);

    let data = build_dataset(
        "incremental-demo",
        Graph::uniform(2_000, 8_000, 11),
        0.5,
        TripleRuleMix::balanced(),
        4,
    );
    let mut db = data.db.clone();
    println!(
        "database: {} tuples ({} Graph edges, {} Triple tuples)",
        db.input_size(),
        db.get("Graph").unwrap().len(),
        data.triple_size
    );
    println!(
        "workload: {n_batches} batches × {batch_tuples} tuples (≈{:.2}% of the database each)",
        100.0 * batch_tuples as f64 / db.input_size() as f64
    );

    let planner = DcqPlanner::smart();
    let mut views: Vec<MaintainedDcq> = Vec::new();
    for id in [GraphQueryId::QG3, GraphQueryId::QG5] {
        let dcq = graph_query(id);
        header(&format!("register {}", id.name()));
        let (view, elapsed) = timed(|| MaintainedDcq::register(dcq, &db).expect("register"));
        println!("{}", view.explain());
        println!(
            "registered in {} with {} result tuples",
            secs(elapsed),
            view.len()
        );
        views.push(view);
    }

    let spec = UpdateSpec::new(n_batches, batch_tuples, &["Graph", "Triple"]);
    let batches = update_workload(&db, &spec, 99);

    header("stream updates");
    let mut maintain_time = vec![Duration::ZERO; views.len()];
    for batch in &batches {
        db.apply_batch(batch).expect("batch applies");
        for (i, view) in views.iter_mut().enumerate() {
            let ((), elapsed) = timed(|| {
                view.apply(batch).expect("maintenance applies");
            });
            maintain_time[i] += elapsed;
        }
    }

    for (i, view) in views.iter().enumerate() {
        let name = view.dcq().q1.name.clone();
        header(&format!("{name} after {n_batches} batches"));
        let (reference, recompute) = timed(|| planner.execute(view.dcq(), &db).expect("recompute"));
        assert_eq!(
            view.result().sorted_rows(),
            reference.sorted_rows(),
            "maintained result must equal one-shot recomputation"
        );
        let stats = view.stats();
        let per_batch = maintain_time[i] / n_batches as u32;
        println!("result size        : {}", view.len());
        println!("maintenance/batch  : {}", secs(per_batch));
        println!(
            "one-shot recompute : {} (×{} batches would be {})",
            secs(recompute),
            n_batches,
            secs(recompute * n_batches as u32)
        );
        println!(
            "speedup vs recompute-per-batch: {:.1}×",
            recompute.as_secs_f64() / per_batch.as_secs_f64().max(1e-9)
        );
        println!(
            "stats: {} applied, {} skipped, +{}/−{} base tuples, +{}/−{} result tuples, {} side recomputes",
            stats.batches_applied,
            stats.batches_skipped,
            stats.tuples_inserted,
            stats.tuples_deleted,
            stats.result_added,
            stats.result_removed,
            stats.side_recomputes
        );
    }
}
