//! Run the DCQ view service and exercise it over its own wire protocol.
//!
//! ```text
//! cargo run --release --example serve              # serve until Ctrl-C
//! cargo run --release --example serve -- --smoke   # bounded self-test, then exit
//! ```
//!
//! Starts `dcq-server` on a loopback port over a seeded graph store with
//! durability in a temp directory, registers the classic difference view
//! `Q(x, y) :- Graph(x, z), Graph(z, y) EXCEPT Graph(x, y)`, and drives it
//! with a client: pushes, epoch-gated reads, a subscription stream and a
//! metrics scrape.  With `--smoke` the demo also kills the server and proves
//! crash recovery, then exits 0 — the mode CI runs.

use dcq_server::client::PushOutcome;
use dcq_server::{recover, DcqClient, DcqServer, DurabilityConfig, ServerConfig};
use dcq_storage::row::int_row;
use dcq_storage::{Database, DeltaBatch, Relation};
use dcqx::util::header;

const VIEW: &str = "Q(x, y) :- Graph(x, z), Graph(z, y) EXCEPT Graph(x, y)";

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "Graph",
        &["src", "dst"],
        (0..16i64).map(|i| vec![i, (i + 1) % 16]),
    ))
    .expect("seed relation");
    let engine = dcqx::DcqEngine::with_database(db);

    let dir = std::env::temp_dir().join(format!("dcq-serve-{}", std::process::id()));
    let config = ServerConfig {
        durability: Some(DurabilityConfig::at(&dir)),
        compaction: dcqx::dcq_engine::CompactionPolicy::max_retained_batches(16),
        ..ServerConfig::default()
    };
    let server = DcqServer::start(engine, config).expect("start server");

    header("dcq-server: concurrent DCQ view service");
    println!("listening on {}", server.addr());
    println!("durability:   {}", dir.display());

    let mut client = DcqClient::connect(server.addr()).expect("connect");
    let reg = client.register(VIEW, None).expect("register");
    println!(
        "registered view {} ({}) at epoch {}",
        reg.view, reg.strategy, reg.epoch
    );

    // A dedicated connection streams the view's result churn.
    let sub = DcqClient::connect(server.addr()).expect("connect subscriber");
    let mut sub = sub.subscribe(reg.view).expect("subscribe");

    header("pushing updates");
    let mut last_epoch = 0;
    for step in 0..8i64 {
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([100 + step, step % 16]));
        batch.insert("Graph", int_row([step % 16, 200 + step]));
        match client.push(&batch).expect("push") {
            PushOutcome::Acked(ack) => {
                last_epoch = ack.epoch;
                println!(
                    "push #{step}: epoch {} (+{} / -{} result rows)",
                    ack.epoch, ack.result_added, ack.result_removed
                );
            }
            PushOutcome::Overloaded { retry_after_ms } => {
                println!("push #{step}: overloaded, retry in {retry_after_ms}ms");
            }
        }
    }

    let reply = client.read(reg.view, Some(last_epoch)).expect("read");
    println!(
        "view {} @ epoch {}: {} result rows",
        reg.view,
        reply.epoch,
        reply.rows.len()
    );
    if let Some(event) = sub.next_event().expect("subscription stream") {
        println!(
            "first churn event: epoch {} (+{} / -{})",
            event.epoch,
            event.added.len(),
            event.removed.len()
        );
    }

    let metrics = client.metrics().expect("metrics");
    header("selected telemetry");
    for line in metrics.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("dcq_engine_epoch")
                || l.starts_with("dcq_engine_batches_total")
                || l.starts_with("dcq_engine_compactions_total")
                || l.starts_with("dcq_server_push_total")
                || l.starts_with("dcq_server_read_total")
                || l.starts_with("dcq_server_wal_records_total"))
    }) {
        println!("{line}");
    }

    if smoke {
        header("smoke: crash + recovery");
        server.kill().expect("kill");
        let (recovered, report) = recover(&dir).expect("recover");
        println!(
            "recovered epoch {} (checkpoint {}, replayed {}, torn tail: {})",
            recovered.epoch(),
            report.checkpoint_epoch,
            report.replayed,
            report.torn_tail
        );
        assert_eq!(
            recovered.epoch(),
            last_epoch,
            "recovery must reach the acked epoch"
        );
        let _ = std::fs::remove_dir_all(&dir);
        println!("smoke OK");
        return;
    }

    println!("\nserving until Ctrl-C (connect with the dcq-server wire protocol)...");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
