//! Example 1.1 at scale: friend recommendation over a synthetic social network.
//!
//! Reproduces the introduction's experiment: the original plan materializes every
//! triangle in the graph (large intermediate result) before the anti-join, while the
//! rewritten plan pushes the difference down and only touches candidate
//! recommendations.
//!
//! ```text
//! cargo run --release --example friend_recommendation
//! ```

use dcq_core::baseline::{baseline_dcq_with_stats, CqStrategy};
use dcq_core::planner::DcqPlanner;
use dcq_datagen::{dataset, graph_query, GraphQueryId};
use dcqx::util::{header, secs, timed};

fn main() {
    // The friend-recommendation query is exactly Q_G3 of the paper's experiments.
    let data = dataset("bitcoin-sim");
    let dcq = graph_query(GraphQueryId::QG3);

    header("dataset: bitcoin-sim");
    println!(
        "|V| = {}, |E| = {}, length-2 paths = {}, triangles = {}, |Triple| = {}",
        data.stats.vertices,
        data.stats.edges,
        data.stats.length2_paths,
        data.stats.triangles,
        data.triple_size
    );

    header("query (Q_G3 / Example 1.1)");
    println!("{dcq}");

    let planner = DcqPlanner::smart();
    let plan = planner.plan(&dcq);
    header("plan chosen by the dichotomy");
    println!("{}", plan.explain());

    header("execution");
    let (optimized, t_opt) = timed(|| planner.execute(&dcq, &data.db).unwrap());
    let ((baseline, stats), t_base) =
        timed(|| baseline_dcq_with_stats(&dcq, &data.db, CqStrategy::Vanilla).unwrap());
    assert_eq!(optimized.sorted_rows(), baseline.sorted_rows());

    println!("recommendations (OUT)       : {}", optimized.len());
    println!("candidate triples (OUT1)    : {}", stats.out1);
    println!("materialized triangles (OUT2): {}", stats.out2);
    println!();
    println!(
        "original plan  (materialize both + anti-join): {}",
        secs(t_base)
    );
    println!(
        "rewritten plan (difference pushed down)      : {}",
        secs(t_opt)
    );
    if t_opt.as_secs_f64() > 0.0 {
        println!(
            "speedup: {:.1}x",
            t_base.as_secs_f64() / t_opt.as_secs_f64()
        );
    }
    println!();
    println!("first few recommendations:");
    for row in optimized.sorted_rows().iter().take(5) {
        println!("  {row}");
    }
}
