//! Quickstart: define a database, write a DCQ, let the planner pick the right
//! algorithm, and compare it with the baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcq_core::baseline::{baseline_dcq_with_stats, CqStrategy};
use dcq_core::parse::parse_dcq;
use dcq_core::planner::DcqPlanner;
use dcq_storage::{Database, Relation};
use dcqx::util::{header, secs, timed};

fn main() {
    // 1. A tiny social network: followers and candidate recommendations.
    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "Graph",
        &["src", "dst"],
        vec![
            vec![1, 2],
            vec![2, 3],
            vec![3, 1],
            vec![2, 4],
            vec![4, 5],
            vec![5, 2],
        ],
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "Triple",
        &["node1", "node2", "node3"],
        vec![
            vec![1, 2, 3], // forms a triangle → not recommended
            vec![2, 4, 5], // forms a triangle → not recommended
            vec![1, 2, 4], // no closing edge 4→1 → recommended
            vec![3, 1, 2], // triangle again
            vec![4, 5, 3], // no edge 3→4 … wait: 3→4 is not in the graph → recommended
        ],
    ))
    .unwrap();

    // 2. The friend-recommendation DCQ of Example 1.1: candidate triples that do NOT
    //    form a triangle in the graph.
    let dcq = parse_dcq(
        "Recommend(node1, node2, node3) :- Triple(node1, node2, node3)
         EXCEPT Graph(node1, node2), Graph(node2, node3), Graph(node3, node1)",
    )
    .unwrap();

    header("query");
    println!("{dcq}");

    // 3. Ask the planner how it will evaluate the query (the dichotomy of Thm 2.4).
    let planner = DcqPlanner::smart();
    let plan = planner.plan(&dcq);
    header("plan");
    println!("{}", plan.explain());

    // 4. Evaluate with the optimized strategy and with the vanilla baseline.
    header("results");
    let (optimized, t_opt) = timed(|| planner.execute(&dcq, &db).unwrap());
    let ((baseline, stats), t_base) =
        timed(|| baseline_dcq_with_stats(&dcq, &db, CqStrategy::Vanilla).unwrap());
    assert_eq!(optimized.sorted_rows(), baseline.sorted_rows());

    for row in optimized.sorted_rows() {
        println!("recommend {row}");
    }
    println!();
    println!(
        "N = {} tuples, OUT1 = {}, OUT2 = {}, OUT = {}",
        db.input_size(),
        stats.out1,
        stats.out2,
        stats.out
    );
    println!("optimized ({}):  {}", plan.strategy, secs(t_opt));
    println!("baseline  (Corollary 2.1): {}", secs(t_base));
}
