//! Quickstart: stand up a `DcqEngine`, prepare a difference query, register it as
//! a maintained view, and stream an update at it — then cross-check the planner's
//! one-shot evaluation against the baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcq_core::baseline::{baseline_dcq_with_stats, CqStrategy};
use dcq_core::parse::parse_dcq;
use dcq_core::planner::DcqPlanner;
use dcq_storage::row::int_row;
use dcq_storage::{Database, DeltaBatch, Relation};
use dcqx::util::{header, secs, timed};
use dcqx::DcqEngine;

fn main() {
    // 1. A tiny social network: followers and candidate recommendations.
    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "Graph",
        &["src", "dst"],
        vec![
            vec![1, 2],
            vec![2, 3],
            vec![3, 1],
            vec![2, 4],
            vec![4, 5],
            vec![5, 2],
        ],
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "Triple",
        &["node1", "node2", "node3"],
        vec![
            vec![1, 2, 3], // forms a triangle → not recommended
            vec![2, 4, 5], // forms a triangle → not recommended
            vec![1, 2, 4], // no closing edge 4→1 → recommended
            vec![3, 1, 2], // triangle again
            vec![4, 5, 3], // no edge 3→4 → recommended
        ],
    ))
    .unwrap();

    // 2. The friend-recommendation DCQ of Example 1.1: candidate triples that do NOT
    //    form a triangle in the graph.
    let dcq = parse_dcq(
        "Recommend(node1, node2, node3) :- Triple(node1, node2, node3)
         EXCEPT Graph(node1, node2), Graph(node2, node3), Graph(node3, node1)",
    )
    .unwrap();

    header("query");
    println!("{dcq}");

    // 3. The engine owns the database of record.  `prepare` resolves the dichotomy
    //    classification (memoized by query shape), `register` builds the view.
    let mut engine = DcqEngine::with_database(db);
    let prepared = engine.prepare(dcq.clone()).unwrap();
    header("plan");
    println!("{}", prepared.explain());
    let view = engine.register(&prepared).unwrap();

    header("initial result");
    for row in engine.result(view).unwrap().sorted_rows() {
        println!("recommend {row}");
    }

    // 4. Preparing the same shape again is free: the plan cache serves it without
    //    re-classifying.
    let again = engine.prepare(dcq.clone()).unwrap();
    let cache = engine.plan_cache_stats();
    println!();
    println!(
        "second prepare: cache hit = {} ({} hit(s), {} miss(es))",
        again.cache_hit(),
        cache.hits,
        cache.misses
    );

    // 5. Stream an update: close the triangle 1→2→4→1, so (1,2,4) stops being
    //    recommended — the view is maintained incrementally, no re-registration.
    header("update");
    let mut batch = DeltaBatch::new();
    batch.insert("Graph", int_row([4, 1]));
    let report = engine.apply(&batch).unwrap();
    println!(
        "applied batch → epoch {}, +{}/−{} base tuples, {} view(s) maintained",
        report.epoch, report.effect.inserted, report.effect.deleted, report.views_applied
    );
    for row in engine.result(view).unwrap().sorted_rows() {
        println!("recommend {row}");
    }

    // 6. Cross-check the planner's one-shot evaluation against the vanilla
    //    baseline on the current database of record.
    header("one-shot cross-check");
    let planner = DcqPlanner::smart();
    let plan = planner.plan(&dcq);
    let (optimized, t_opt) = timed(|| planner.execute(&dcq, engine.database()).unwrap());
    let ((baseline, stats), t_base) =
        timed(|| baseline_dcq_with_stats(&dcq, engine.database(), CqStrategy::Vanilla).unwrap());
    assert_eq!(optimized.sorted_rows(), baseline.sorted_rows());
    assert_eq!(
        optimized.sorted_rows(),
        engine.result(view).unwrap().sorted_rows(),
        "maintained view must equal one-shot evaluation"
    );
    println!(
        "N = {} tuples, OUT1 = {}, OUT2 = {}, OUT = {}",
        engine.database().input_size(),
        stats.out1,
        stats.out2,
        stats.out
    );
    println!("optimized ({}):  {}", plan.strategy, secs(t_opt));
    println!("baseline  (Corollary 2.1): {}", secs(t_base));
}
