//! Run the six graph pattern queries Q_G1 … Q_G6 of Figure 4 on a synthetic dataset
//! and compare the vanilla plan with the plan chosen by the dichotomy — a miniature
//! version of the Figure 5 experiment.
//!
//! ```text
//! cargo run --release --example graph_patterns [dataset]
//! ```
//!
//! `dataset` defaults to `bitcoin-sim`; see `dcq_datagen::dataset_names()`.

use dcq_core::baseline::{baseline_dcq_with_stats, CqStrategy};
use dcq_core::planner::DcqPlanner;
use dcq_datagen::{dataset, dataset_names, graph_queries};
use dcqx::util::{header, secs, timed};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bitcoin-sim".to_string());
    if !dataset_names().contains(&name.as_str()) {
        eprintln!("unknown dataset `{name}`; available: {:?}", dataset_names());
        std::process::exit(1);
    }
    let data = dataset(&name);
    header(&format!("dataset: {name}"));
    println!(
        "|V| = {}, |E| = {}, length-2 paths = {}, triangles = {}, |Triple| = {}",
        data.stats.vertices,
        data.stats.edges,
        data.stats.length2_paths,
        data.stats.triangles,
        data.triple_size
    );

    let planner = DcqPlanner::smart();
    header("Figure 5 (miniature): original vs optimized plan");
    println!(
        "{:<5} {:>10} {:>10} {:>10} {:>12} {:>12} {:>8}  strategy",
        "query", "OUT1", "OUT2", "OUT", "original", "optimized", "speedup"
    );
    for (id, dcq) in graph_queries() {
        // Q_G6's positive side is a Cartesian product of the edge relation with
        // itself; keep it to the smallest dataset to stay laptop-friendly (the paper
        // itself only completes it on the two smallest graphs).
        if id.name() == "QG6" && data.stats.edges > 2_500 {
            println!(
                "{:<5} skipped (Cartesian product too large for this dataset)",
                id.name()
            );
            continue;
        }
        let plan = planner.plan(&dcq);
        let ((baseline, stats), t_base) =
            timed(|| baseline_dcq_with_stats(&dcq, &data.db, CqStrategy::Vanilla).unwrap());
        let (optimized, t_opt) = timed(|| planner.execute(&dcq, &data.db).unwrap());
        assert_eq!(optimized.len(), baseline.len(), "{} mismatch", id.name());
        let speedup = if t_opt.as_secs_f64() > 0.0 {
            t_base.as_secs_f64() / t_opt.as_secs_f64()
        } else {
            f64::INFINITY
        };
        println!(
            "{:<5} {:>10} {:>10} {:>10} {:>12} {:>12} {:>7.1}x  {}",
            id.name(),
            stats.out1,
            stats.out2,
            stats.out,
            secs(t_base),
            secs(t_opt),
            speedup,
            plan.strategy
        );
    }
}
