//! The benchmark-query half of Figure 5: TPC-H Q16-like and TPC-DS Q35/Q69-like
//! workloads at several scale factors, original vs rewritten plans.
//!
//! ```text
//! cargo run --release --example benchmark_queries
//! ```

use dcq_core::baseline::CqStrategy;
use dcq_core::multi::{multi_dcq_naive, multi_dcq_recursive};
use dcq_datagen::{tpcds_q35_workload, tpcds_q69_workload, tpch_q16_workload, BenchmarkWorkload};
use dcqx::util::{header, secs, timed};

fn run(workload: &BenchmarkWorkload) {
    let (fast, t_fast) = timed(|| multi_dcq_recursive(&workload.multi, &workload.db).unwrap());
    let (slow, t_slow) =
        timed(|| multi_dcq_naive(&workload.multi, &workload.db, CqStrategy::Vanilla).unwrap());
    assert_eq!(fast.sorted_rows(), slow.sorted_rows());
    println!(
        "{:<11} sf={:<3} N={:>9} OUT={:>7}  original={:>9}  optimized={:>9}",
        workload.name,
        workload.scale_factor,
        workload.input_size(),
        fast.len(),
        secs(t_slow),
        secs(t_fast),
    );
}

fn main() {
    header("Figure 5 (benchmark queries, synthetic TPC slices)");
    println!("As in the paper, the PK-FK joins keep OUT1 ≈ OUT2 ≈ OUT ≪ N, so the");
    println!("optimized plans bring little or no improvement on these queries.");
    println!();
    for sf in [1usize, 2, 4] {
        run(&tpch_q16_workload(sf));
        run(&tpcds_q35_workload(sf));
        run(&tpcds_q69_workload(sf));
    }
}
